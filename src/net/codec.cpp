#include "net/codec.h"

#include <bit>
#include <cstring>

namespace ddos::net {

namespace {

// Byte-level little-endian writers/readers: the format must not depend on
// host struct layout, and byte stores sidestep alignment entirely.
void put_u8(std::vector<std::uint8_t>& out, std::uint8_t v) {
  out.push_back(v);
}

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void put_i64(std::vector<std::uint8_t>& out, std::int64_t v) {
  put_u64(out, static_cast<std::uint64_t>(v));
}

void put_f64(std::vector<std::uint8_t>& out, double v) {
  put_u64(out, std::bit_cast<std::uint64_t>(v));
}

// Cursor over a frame body; every get_* checks bounds and trips `ok`
// sticky-false on underrun, so decoders read linearly and test once.
struct Reader {
  std::span<const std::uint8_t> buf;
  std::size_t pos = 0;
  bool ok = true;

  bool need(std::size_t n) {
    if (!ok || buf.size() - pos < n) {
      ok = false;
      return false;
    }
    return true;
  }
  std::uint8_t get_u8() {
    if (!need(1)) return 0;
    return buf[pos++];
  }
  std::uint16_t get_u16() {
    if (!need(2)) return 0;
    std::uint16_t v = static_cast<std::uint16_t>(buf[pos]) |
                      static_cast<std::uint16_t>(buf[pos + 1]) << 8;
    pos += 2;
    return v;
  }
  std::uint32_t get_u32() {
    if (!need(4)) return 0;
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(buf[pos + i]) << (8 * i);
    }
    pos += 4;
    return v;
  }
  std::uint64_t get_u64() {
    if (!need(8)) return 0;
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(buf[pos + i]) << (8 * i);
    }
    pos += 8;
    return v;
  }
  std::int64_t get_i64() { return static_cast<std::int64_t>(get_u64()); }
  double get_f64() { return std::bit_cast<double>(get_u64()); }
  /// Strict decoders require the body fully consumed.
  bool done() const { return ok && pos == buf.size(); }
};

// Reserve the 4-byte length slot, write header, return the slot offset.
std::size_t begin_frame(std::vector<std::uint8_t>& out, Opcode op,
                        std::uint32_t request_id) {
  const std::size_t len_at = out.size();
  put_u32(out, 0);  // patched by end_frame
  put_u8(out, kMagic);
  put_u8(out, kProtocolVersion);
  put_u8(out, static_cast<std::uint8_t>(op));
  put_u8(out, 0);  // reserved
  put_u32(out, request_id);
  return len_at;
}

void end_frame(std::vector<std::uint8_t>& out, std::size_t len_at) {
  const std::size_t payload = out.size() - len_at - 4;
  for (int i = 0; i < 4; ++i) {
    out[len_at + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(payload >> (8 * i));
  }
}

bool valid_opcode(std::uint8_t op) {
  switch (static_cast<Opcode>(op)) {
    case Opcode::Hello:
    case Opcode::PointLookup:
    case Opcode::TopK:
    case Opcode::WindowScan:
    case Opcode::HelloOk:
    case Opcode::PointOk:
    case Opcode::TopKOk:
    case Opcode::ScanOk:
    case Opcode::Error:
      return true;
  }
  return false;
}

}  // namespace

const char* to_string(Opcode op) {
  switch (op) {
    case Opcode::Hello: return "hello";
    case Opcode::PointLookup: return "point_lookup";
    case Opcode::TopK: return "top_k";
    case Opcode::WindowScan: return "window_scan";
    case Opcode::HelloOk: return "hello_ok";
    case Opcode::PointOk: return "point_ok";
    case Opcode::TopKOk: return "top_k_ok";
    case Opcode::ScanOk: return "scan_ok";
    case Opcode::Error: return "error";
  }
  return "?";
}

const char* to_string(DecodeStatus status) {
  switch (status) {
    case DecodeStatus::Ok: return "ok";
    case DecodeStatus::NeedMore: return "need_more";
    case DecodeStatus::BadMagic: return "bad_magic";
    case DecodeStatus::BadVersion: return "bad_version";
    case DecodeStatus::BadOpcode: return "bad_opcode";
    case DecodeStatus::BadReserved: return "bad_reserved";
    case DecodeStatus::Oversized: return "oversized";
    case DecodeStatus::Truncated: return "truncated";
    case DecodeStatus::TrailingBytes: return "trailing_bytes";
  }
  return "?";
}

void encode_hello(std::uint32_t request_id, std::vector<std::uint8_t>& out) {
  end_frame(out, begin_frame(out, Opcode::Hello, request_id));
}

void encode_point_lookup(std::uint32_t request_id, std::uint64_t key_index,
                         std::vector<std::uint8_t>& out) {
  const std::size_t at = begin_frame(out, Opcode::PointLookup, request_id);
  put_u64(out, key_index);
  end_frame(out, at);
}

void encode_top_k(std::uint32_t request_id, serve::TopKMetric metric,
                  std::uint32_t k, std::vector<std::uint8_t>& out) {
  const std::size_t at = begin_frame(out, Opcode::TopK, request_id);
  put_u8(out, static_cast<std::uint8_t>(metric));
  put_u8(out, 0);
  put_u8(out, 0);
  put_u8(out, 0);
  put_u32(out, k);
  end_frame(out, at);
}

void encode_window_scan(std::uint32_t request_id, netsim::DayIndex day_lo,
                        netsim::DayIndex day_hi,
                        std::vector<std::uint8_t>& out) {
  const std::size_t at = begin_frame(out, Opcode::WindowScan, request_id);
  put_i64(out, day_lo);
  put_i64(out, day_hi);
  end_frame(out, at);
}

void encode_hello_ok(std::uint32_t request_id, const HelloResult& result,
                     std::vector<std::uint8_t>& out) {
  const std::size_t at = begin_frame(out, Opcode::HelloOk, request_id);
  put_u64(out, result.key_count);
  put_i64(out, result.day_min);
  put_i64(out, result.day_max);
  put_u64(out, result.nsset_count);
  put_u64(out, result.engine_epoch);
  end_frame(out, at);
}

void encode_point_ok(std::uint32_t request_id, const WirePointResult& result,
                     std::vector<std::uint8_t>& out) {
  const std::size_t at = begin_frame(out, Opcode::PointOk, request_id);
  put_u8(out, result.found ? 1 : 0);
  put_u8(out, 0);
  put_u8(out, 0);
  put_u8(out, 0);
  const serve::NssetSummary& s = result.summary;
  put_u32(out, s.nsset);
  put_u32(out, s.events);
  put_u64(out, s.domains_hosted);
  put_f64(out, s.peak_impact);
  put_f64(out, s.max_failure_rate);
  put_u32(out, s.ok);
  put_u32(out, s.timeouts);
  put_u32(out, s.servfails);
  put_i64(out, s.first_day);
  put_i64(out, s.last_day);
  put_u32(out, result.event_count);
  put_u32(out, result.series_len);
  end_frame(out, at);
}

void encode_top_k_ok(std::uint32_t request_id,
                     std::span<const serve::TopEntry> rows,
                     std::vector<std::uint8_t>& out) {
  const std::size_t at = begin_frame(out, Opcode::TopKOk, request_id);
  put_u32(out, static_cast<std::uint32_t>(rows.size()));
  for (const serve::TopEntry& row : rows) {
    put_u64(out, row.key);
    put_f64(out, row.value);
  }
  end_frame(out, at);
}

void encode_scan_ok(std::uint32_t request_id,
                    const serve::WindowScanResult& result,
                    std::vector<std::uint8_t>& out) {
  const std::size_t at = begin_frame(out, Opcode::ScanOk, request_id);
  put_i64(out, result.day_lo);
  put_i64(out, result.day_hi);
  put_u64(out, result.events);
  put_u64(out, result.events_with_failures);
  put_u64(out, result.timeouts);
  put_u64(out, result.servfails);
  put_u64(out, result.impaired_10x);
  put_u64(out, result.severe_100x);
  put_f64(out, result.max_peak_impact);
  end_frame(out, at);
}

void encode_error(std::uint32_t request_id, ErrorCode code,
                  std::string_view message, std::vector<std::uint8_t>& out) {
  // Clamp the message so an error can never itself exceed the frame cap.
  const std::size_t max_msg = 512;
  if (message.size() > max_msg) message = message.substr(0, max_msg);
  const std::size_t at = begin_frame(out, Opcode::Error, request_id);
  put_u16(out, static_cast<std::uint16_t>(code));
  put_u16(out, static_cast<std::uint16_t>(message.size()));
  out.insert(out.end(), message.begin(), message.end());
  end_frame(out, at);
}

DecodeStatus decode_frame(std::span<const std::uint8_t> buf, Frame& frame,
                          std::size_t& consumed) {
  consumed = 0;
  if (buf.size() < 4) return DecodeStatus::NeedMore;
  std::uint32_t payload_len = 0;
  for (int i = 0; i < 4; ++i) {
    payload_len |= static_cast<std::uint32_t>(buf[static_cast<std::size_t>(i)])
                   << (8 * i);
  }
  // The length is validated BEFORE waiting for the bytes: an oversized
  // announcement is rejected immediately, so a hostile peer cannot make
  // the server buffer toward a 4 GiB frame that will never be accepted.
  if (payload_len > kMaxFrameBytes) return DecodeStatus::Oversized;
  if (payload_len < kHeaderBytes) {
    // A frame too short to hold the header can never become valid.
    return DecodeStatus::Truncated;
  }
  if (buf.size() - 4 < payload_len) return DecodeStatus::NeedMore;

  const std::span<const std::uint8_t> payload = buf.subspan(4, payload_len);
  if (payload[0] != kMagic) return DecodeStatus::BadMagic;
  if (payload[1] != kProtocolVersion) return DecodeStatus::BadVersion;
  if (!valid_opcode(payload[2])) return DecodeStatus::BadOpcode;
  if (payload[3] != 0) return DecodeStatus::BadReserved;

  frame.opcode = static_cast<Opcode>(payload[2]);
  frame.request_id = 0;
  for (int i = 0; i < 4; ++i) {
    frame.request_id |=
        static_cast<std::uint32_t>(payload[4 + static_cast<std::size_t>(i)])
        << (8 * i);
  }
  frame.body = payload.subspan(kHeaderBytes);
  consumed = 4 + static_cast<std::size_t>(payload_len);
  return DecodeStatus::Ok;
}

std::optional<std::uint64_t> decode_point_lookup(const Frame& frame) {
  if (frame.opcode != Opcode::PointLookup) return std::nullopt;
  Reader r{frame.body};
  const std::uint64_t key_index = r.get_u64();
  if (!r.done()) return std::nullopt;
  return key_index;
}

std::optional<TopKRequest> decode_top_k(const Frame& frame) {
  if (frame.opcode != Opcode::TopK) return std::nullopt;
  Reader r{frame.body};
  TopKRequest req;
  const std::uint8_t metric = r.get_u8();
  if (metric > static_cast<std::uint8_t>(serve::TopKMetric::FailureRate)) {
    return std::nullopt;
  }
  req.metric = static_cast<serve::TopKMetric>(metric);
  if (r.get_u8() != 0 || r.get_u8() != 0 || r.get_u8() != 0) {
    return std::nullopt;
  }
  req.k = r.get_u32();
  if (!r.done()) return std::nullopt;
  return req;
}

std::optional<WindowScanRequest> decode_window_scan(const Frame& frame) {
  if (frame.opcode != Opcode::WindowScan) return std::nullopt;
  Reader r{frame.body};
  WindowScanRequest req;
  req.day_lo = r.get_i64();
  req.day_hi = r.get_i64();
  if (!r.done()) return std::nullopt;
  return req;
}

std::optional<HelloResult> decode_hello_ok(const Frame& frame) {
  if (frame.opcode != Opcode::HelloOk) return std::nullopt;
  Reader r{frame.body};
  HelloResult res;
  res.key_count = r.get_u64();
  res.day_min = r.get_i64();
  res.day_max = r.get_i64();
  res.nsset_count = r.get_u64();
  res.engine_epoch = r.get_u64();
  if (!r.done()) return std::nullopt;
  return res;
}

std::optional<WirePointResult> decode_point_ok(const Frame& frame) {
  if (frame.opcode != Opcode::PointOk) return std::nullopt;
  Reader r{frame.body};
  WirePointResult res;
  const std::uint8_t found = r.get_u8();
  if (found > 1) return std::nullopt;
  res.found = found == 1;
  if (r.get_u8() != 0 || r.get_u8() != 0 || r.get_u8() != 0) {
    return std::nullopt;
  }
  serve::NssetSummary& s = res.summary;
  s.nsset = r.get_u32();
  s.events = r.get_u32();
  s.domains_hosted = r.get_u64();
  s.peak_impact = r.get_f64();
  s.max_failure_rate = r.get_f64();
  s.ok = r.get_u32();
  s.timeouts = r.get_u32();
  s.servfails = r.get_u32();
  s.first_day = r.get_i64();
  s.last_day = r.get_i64();
  res.event_count = r.get_u32();
  res.series_len = r.get_u32();
  if (!r.done()) return std::nullopt;
  return res;
}

bool decode_top_k_ok(const Frame& frame, std::vector<serve::TopEntry>& rows) {
  rows.clear();
  if (frame.opcode != Opcode::TopKOk) return false;
  Reader r{frame.body};
  const std::uint32_t n = r.get_u32();
  if (!r.ok) return false;
  // The row count must match the remaining bytes exactly.
  if (frame.body.size() - r.pos != static_cast<std::size_t>(n) * 16) {
    return false;
  }
  rows.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    serve::TopEntry e;
    e.key = r.get_u64();
    e.value = r.get_f64();
    rows.push_back(e);
  }
  return r.done();
}

std::optional<serve::WindowScanResult> decode_scan_ok(const Frame& frame) {
  if (frame.opcode != Opcode::ScanOk) return std::nullopt;
  Reader r{frame.body};
  serve::WindowScanResult res;
  res.day_lo = r.get_i64();
  res.day_hi = r.get_i64();
  res.events = r.get_u64();
  res.events_with_failures = r.get_u64();
  res.timeouts = r.get_u64();
  res.servfails = r.get_u64();
  res.impaired_10x = r.get_u64();
  res.severe_100x = r.get_u64();
  res.max_peak_impact = r.get_f64();
  if (!r.done()) return std::nullopt;
  return res;
}

std::optional<WireError> decode_error(const Frame& frame) {
  if (frame.opcode != Opcode::Error) return std::nullopt;
  Reader r{frame.body};
  WireError err;
  const std::uint16_t code = r.get_u16();
  if (code < 1 || code > 3) return std::nullopt;
  err.code = static_cast<ErrorCode>(code);
  const std::uint16_t len = r.get_u16();
  if (!r.ok || frame.body.size() - r.pos != len) return std::nullopt;
  err.message.assign(reinterpret_cast<const char*>(frame.body.data()) + r.pos,
                     len);
  return err;
}

}  // namespace ddos::net
