#include "net/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <unordered_map>
#include <utility>

namespace ddos::net {

namespace {

using Clock = std::chrono::steady_clock;

// Same shape as serve::drive_latency_histogram(): 10 ns .. 100 s in
// tenth-of-a-decade bins. Service time per request, not round trip.
constexpr double kRequestUsBase = 0.01;
constexpr double kRequestUsDecadesPerBin = 0.1;
constexpr std::size_t kRequestUsBins = 100;

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

const char* op_label(Opcode op) {
  switch (op) {
    case Opcode::Hello: return "hello";
    case Opcode::PointLookup: return "point";
    case Opcode::TopK: return "topk";
    case Opcode::WindowScan: return "scan";
    default: return "?";
  }
}

/// hello/point/topk/scan -> 0..3 for the per-op histogram array.
std::size_t op_slot(Opcode op) {
  switch (op) {
    case Opcode::Hello: return 0;
    case Opcode::PointLookup: return 1;
    case Opcode::TopK: return 2;
    default: return 3;
  }
}

}  // namespace

// ---- EngineHandle ----------------------------------------------------

std::shared_ptr<const EngineHandle> EngineHandle::load(
    const std::string& store_path, std::uint64_t epoch) {
  // Member order matters: the engine holds a pointer into *run_, and the
  // unique_ptrs keep both addresses stable for the handle's lifetime.
  auto handle = std::shared_ptr<EngineHandle>(new EngineHandle());
  handle->run_ =
      std::make_unique<scenario::StoredRun>(scenario::load_run(store_path));
  handle->owned_engine_ = std::make_unique<serve::QueryEngine>(*handle->run_);
  handle->engine_ = handle->owned_engine_.get();
  handle->epoch_ = epoch;
  return handle;
}

std::shared_ptr<const EngineHandle> EngineHandle::view(
    const serve::QueryEngine& engine, std::uint64_t epoch) {
  auto handle = std::shared_ptr<EngineHandle>(new EngineHandle());
  handle->engine_ = &engine;
  handle->epoch_ = epoch;
  return handle;
}

// ---- Server internals ------------------------------------------------

struct Server::Connection {
  int fd = -1;
  std::vector<std::uint8_t> read_buf;
  std::size_t read_off = 0;  // bytes of read_buf already consumed
  std::vector<std::uint8_t> write_buf;
  std::size_t write_off = 0;
  bool want_write = false;  // EPOLLOUT currently armed
  bool closing = false;     // close as soon as write_buf drains
};

struct Server::Loop {
  int epoll_fd = -1;
  int wake_fd = -1;
  std::unordered_map<int, std::unique_ptr<Connection>> conns;
};

Server::Server(std::shared_ptr<const EngineHandle> engine,
               ServerOptions options)
    : options_(std::move(options)), engine_(std::move(engine)) {
  if (options_.threads == 0) options_.threads = 1;
}

Server::~Server() { stop(); }

void Server::start() {
  if (running_) return;

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                        0);
  if (listen_fd_ < 0) throw_errno("net::Server socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("net::Server: bad listen address '" +
                             options_.host + "'");
  }
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 128) != 0) {
    const int saved = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    errno = saved;
    throw_errno("net::Server bind/listen " + options_.host + ":" +
                std::to_string(options_.port));
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &bound_len);
  bound_port_ = ntohs(bound.sin_port);

  if (obs::Observer* o = obs::Observer::installed()) {
    auto& metrics = o->metrics();
    m_requests_ = &metrics.counter("net.requests");
    m_rx_bytes_ = &metrics.counter("net.rx_bytes");
    m_tx_bytes_ = &metrics.counter("net.tx_bytes");
    m_accepted_ = &metrics.counter("net.connections_accepted");
    m_malformed_ = &metrics.counter("net.malformed_frames");
    m_swaps_ = &metrics.counter("net.engine_swaps");
    m_open_ = &metrics.gauge("net.connections_open");
    m_queue_depth_ = &metrics.gauge("net.queue_depth_bytes");
    for (const Opcode op : {Opcode::Hello, Opcode::PointLookup, Opcode::TopK,
                            Opcode::WindowScan}) {
      m_request_us_[op_slot(op)] = &metrics.histogram(
          "net.request_us", kRequestUsBase, kRequestUsDecadesPerBin,
          kRequestUsBins, {{"op", op_label(op)}});
    }
    progress_.emplace(&o->progress_sources(), "net.requests", [this] {
      return requests_.load(std::memory_order_relaxed);
    });
  }

  stop_.store(false, std::memory_order_relaxed);
  loops_.clear();
  loops_.reserve(options_.threads);
  for (unsigned i = 0; i < options_.threads; ++i) {
    auto loop = std::make_unique<Loop>();
    loop->epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
    loop->wake_fd = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
    if (loop->epoll_fd < 0 || loop->wake_fd < 0) {
      throw_errno("net::Server epoll/eventfd");
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = loop->wake_fd;
    ::epoll_ctl(loop->epoll_fd, EPOLL_CTL_ADD, loop->wake_fd, &ev);
    // EPOLLEXCLUSIVE: the kernel wakes one loop per pending accept, so
    // connections spread across loops without a thundering herd.
    ev.events = EPOLLIN | EPOLLEXCLUSIVE;
    ev.data.fd = listen_fd_;
    ::epoll_ctl(loop->epoll_fd, EPOLL_CTL_ADD, listen_fd_, &ev);
    loops_.push_back(std::move(loop));
  }
  threads_.reserve(options_.threads);
  for (unsigned i = 0; i < options_.threads; ++i) {
    threads_.emplace_back([this, i] { loop_main(*loops_[i]); });
  }
  running_ = true;
}

void Server::stop() {
  if (!running_) return;
  stop_.store(true, std::memory_order_release);
  for (auto& loop : loops_) {
    const std::uint64_t one = 1;
    [[maybe_unused]] ssize_t n = ::write(loop->wake_fd, &one, sizeof(one));
  }
  for (std::thread& t : threads_) t.join();
  threads_.clear();
  for (auto& loop : loops_) {
    for (auto& [fd, conn] : loop->conns) ::close(fd);
    loop->conns.clear();
    ::close(loop->wake_fd);
    ::close(loop->epoll_fd);
  }
  loops_.clear();
  ::close(listen_fd_);
  listen_fd_ = -1;
  connections_open_.store(0, std::memory_order_relaxed);
  tx_queued_bytes_.store(0, std::memory_order_relaxed);
  if (m_open_ != nullptr) m_open_->set(0.0);
  if (m_queue_depth_ != nullptr) m_queue_depth_->set(0.0);
  progress_.reset();
  running_ = false;
}

void Server::install_engine(std::shared_ptr<const EngineHandle> engine) {
  {
    const std::lock_guard<std::mutex> lock(engine_mu_);
    engine_.swap(engine);
  }
  // `engine` now holds the old handle; it dies here unless an in-flight
  // batch still pins it.
  engine_swaps_.fetch_add(1, std::memory_order_relaxed);
  if (m_swaps_ != nullptr) m_swaps_->inc();
}

std::shared_ptr<const EngineHandle> Server::current_engine() const {
  const std::lock_guard<std::mutex> lock(engine_mu_);
  return engine_;
}

ServerStats Server::stats() const {
  ServerStats s;
  s.connections_accepted =
      connections_accepted_.load(std::memory_order_relaxed);
  s.connections_open = connections_open_.load(std::memory_order_relaxed);
  s.requests = requests_.load(std::memory_order_relaxed);
  s.rx_bytes = rx_bytes_.load(std::memory_order_relaxed);
  s.tx_bytes = tx_bytes_.load(std::memory_order_relaxed);
  s.malformed_frames = malformed_frames_.load(std::memory_order_relaxed);
  s.engine_swaps = engine_swaps_.load(std::memory_order_relaxed);
  return s;
}

void Server::note_tx_queued(std::int64_t delta) {
  const std::int64_t now =
      tx_queued_bytes_.fetch_add(delta, std::memory_order_relaxed) + delta;
  if (m_queue_depth_ != nullptr) {
    m_queue_depth_->set(static_cast<double>(now < 0 ? 0 : now));
  }
}

void Server::loop_main(Loop& loop) {
  constexpr int kMaxEvents = 64;
  epoll_event events[kMaxEvents];
  while (!stop_.load(std::memory_order_acquire)) {
    const int n = ::epoll_wait(loop.epoll_fd, events, kMaxEvents, -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // epoll fd itself is broken; nothing sane left to do
    }
    for (int i = 0; i < n; ++i) {
      if (stop_.load(std::memory_order_acquire)) return;
      const int fd = events[i].data.fd;
      if (fd == loop.wake_fd) {
        std::uint64_t drained = 0;
        [[maybe_unused]] ssize_t r =
            ::read(loop.wake_fd, &drained, sizeof(drained));
        continue;
      }
      if (fd == listen_fd_) {
        accept_ready(loop);
        continue;
      }
      const auto it = loop.conns.find(fd);
      if (it == loop.conns.end()) continue;  // closed earlier in this batch
      Connection& conn = *it->second;
      if ((events[i].events & (EPOLLHUP | EPOLLERR)) != 0) {
        close_conn(loop, conn);
        continue;
      }
      if ((events[i].events & EPOLLOUT) != 0) conn_writable(loop, conn);
      // conn_writable may have closed the connection; re-check.
      if (loop.conns.count(fd) != 0 && (events[i].events & EPOLLIN) != 0) {
        conn_readable(loop, conn);
      }
    }
  }
}

void Server::accept_ready(Loop& loop) {
  for (;;) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) return;  // EAGAIN (or a raced-away connection): done
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    if (::epoll_ctl(loop.epoll_fd, EPOLL_CTL_ADD, fd, &ev) != 0) {
      ::close(fd);
      continue;
    }
    loop.conns.emplace(fd, std::move(conn));
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    connections_open_.fetch_add(1, std::memory_order_relaxed);
    if (m_accepted_ != nullptr) m_accepted_->inc();
    if (m_open_ != nullptr) {
      m_open_->set(static_cast<double>(
          connections_open_.load(std::memory_order_relaxed)));
    }
  }
}

void Server::conn_readable(Loop& loop, Connection& conn) {
  bool peer_closed = false;
  for (;;) {
    constexpr std::size_t kChunk = 64 * 1024;
    const std::size_t old_size = conn.read_buf.size();
    conn.read_buf.resize(old_size + kChunk);
    const ssize_t n = ::read(conn.fd, conn.read_buf.data() + old_size, kChunk);
    if (n > 0) {
      conn.read_buf.resize(old_size + static_cast<std::size_t>(n));
      rx_bytes_.fetch_add(static_cast<std::uint64_t>(n),
                          std::memory_order_relaxed);
      if (m_rx_bytes_ != nullptr) m_rx_bytes_->inc(static_cast<std::uint64_t>(n));
      if (static_cast<std::size_t>(n) < kChunk) break;  // drained the socket
      continue;
    }
    conn.read_buf.resize(old_size);
    if (n == 0) {
      peer_closed = true;
    } else if (errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR) {
      close_conn(loop, conn);
      return;
    }
    break;
  }

  if (!conn.closing) {
    // Pin the engine once per batch (one mutex hit per epoll wakeup):
    // every frame already buffered is answered by the same engine even
    // if install_engine races with us.
    const std::shared_ptr<const EngineHandle> engine = current_engine();
    if (!drain_frames(conn, *engine)) {
      // Malformed input: the error frame is queued; flush it and close
      // once (and only once) the buffer drains.
      conn.closing = true;
    }
  }
  flush(loop, conn);
  if (loop.conns.count(conn.fd) == 0) return;  // flush closed it
  if (peer_closed || (conn.closing && conn.write_buf.empty())) {
    close_conn(loop, conn);
  }
}

void Server::conn_writable(Loop& loop, Connection& conn) {
  flush(loop, conn);
  if (loop.conns.count(conn.fd) == 0) return;
  if (conn.closing && conn.write_buf.empty()) close_conn(loop, conn);
}

bool Server::drain_frames(Connection& conn, const EngineHandle& engine) {
  for (;;) {
    const std::span<const std::uint8_t> pending(
        conn.read_buf.data() + conn.read_off,
        conn.read_buf.size() - conn.read_off);
    Frame frame;
    std::size_t consumed = 0;
    const DecodeStatus status = decode_frame(pending, frame, consumed);
    if (status == DecodeStatus::NeedMore) break;
    if (status != DecodeStatus::Ok) {
      malformed_frames_.fetch_add(1, std::memory_order_relaxed);
      if (m_malformed_ != nullptr) m_malformed_->inc();
      const std::size_t before = conn.write_buf.size();
      // Best-effort goodbye; the header may be garbage so id 0 is all we
      // can echo.
      encode_error(0, ErrorCode::Malformed, to_string(status),
                   conn.write_buf);
      note_tx_queued(
          static_cast<std::int64_t>(conn.write_buf.size() - before));
      return false;
    }
    conn.read_off += consumed;
    handle_frame(conn, frame, engine);
  }
  // Compact: drop consumed bytes so the buffer never grows past one
  // partial frame plus whatever the last read appended.
  if (conn.read_off > 0) {
    conn.read_buf.erase(conn.read_buf.begin(),
                        conn.read_buf.begin() +
                            static_cast<std::ptrdiff_t>(conn.read_off));
    conn.read_off = 0;
  }
  return true;
}

void Server::handle_frame(Connection& conn, const Frame& frame,
                          const EngineHandle& engine) {
  if (options_.before_request) options_.before_request(frame.opcode);
  const std::size_t before = conn.write_buf.size();
  const Clock::time_point t0 = Clock::now();
  const serve::QueryEngine& q = engine.engine();

  switch (frame.opcode) {
    case Opcode::Hello: {
      if (!frame.body.empty()) {
        encode_error(frame.request_id, ErrorCode::Malformed,
                     "hello takes no body", conn.write_buf);
        break;
      }
      HelloResult hello;
      hello.key_count = q.keys().size();
      hello.day_min = q.day_min();
      hello.day_max = q.day_max();
      hello.nsset_count = q.nsset_count();
      hello.engine_epoch = engine.epoch();
      encode_hello_ok(frame.request_id, hello, conn.write_buf);
      break;
    }
    case Opcode::PointLookup: {
      const std::optional<std::uint64_t> key_index =
          decode_point_lookup(frame);
      if (!key_index) {
        encode_error(frame.request_id, ErrorCode::Malformed,
                     "bad point_lookup body", conn.write_buf);
        break;
      }
      if (*key_index >= q.keys().size()) {
        encode_error(frame.request_id, ErrorCode::BadRequest,
                     "key_index " + std::to_string(*key_index) +
                         " out of range (key universe " +
                         std::to_string(q.keys().size()) + ")",
                     conn.write_buf);
        break;
      }
      const serve::PointResult r = q.point_lookup(q.keys()[*key_index]);
      WirePointResult wire;
      wire.found = r.found;
      wire.summary = r.summary;
      wire.event_count = static_cast<std::uint32_t>(r.event_indices.size());
      wire.series_len = static_cast<std::uint32_t>(r.series.size());
      encode_point_ok(frame.request_id, wire, conn.write_buf);
      break;
    }
    case Opcode::TopK: {
      const std::optional<TopKRequest> req = decode_top_k(frame);
      if (!req) {
        encode_error(frame.request_id, ErrorCode::Malformed,
                     "bad top_k body", conn.write_buf);
        break;
      }
      // Cap k so one request cannot demand a response larger than a frame
      // can carry (16 bytes/row; the engine clamps to its universe too).
      const std::uint32_t max_k =
          static_cast<std::uint32_t>((kMaxFrameBytes - kHeaderBytes - 4) / 16);
      if (req->k > max_k) {
        encode_error(frame.request_id, ErrorCode::BadRequest,
                     "k " + std::to_string(req->k) + " exceeds frame cap " +
                         std::to_string(max_k),
                     conn.write_buf);
        break;
      }
      // handle_frame only ever runs on the owning loop's thread, so one
      // scratch vector per thread is as shared-nothing as one per loop.
      static thread_local std::vector<serve::TopEntry> scratch;
      const std::size_t n = q.top_k(req->metric, req->k, scratch);
      encode_top_k_ok(frame.request_id,
                      std::span<const serve::TopEntry>(scratch.data(), n),
                      conn.write_buf);
      break;
    }
    case Opcode::WindowScan: {
      const std::optional<WindowScanRequest> req = decode_window_scan(frame);
      if (!req) {
        encode_error(frame.request_id, ErrorCode::Malformed,
                     "bad window_scan body", conn.write_buf);
        break;
      }
      const serve::WindowScanResult r = q.window_scan(req->day_lo,
                                                      req->day_hi);
      encode_scan_ok(frame.request_id, r, conn.write_buf);
      break;
    }
    default:
      // decode_frame only admits request opcodes from valid_opcode, but a
      // client sending a *response* opcode lands here.
      encode_error(frame.request_id, ErrorCode::BadRequest,
                   "not a request opcode", conn.write_buf);
      break;
  }

  const double us = std::chrono::duration<double, std::micro>(
                        Clock::now() - t0).count();
  requests_.fetch_add(1, std::memory_order_relaxed);
  if (m_requests_ != nullptr) m_requests_->inc();
  if (obs::HistogramMetric* h = m_request_us_[op_slot(frame.opcode)]) {
    h->observe(us);
  }
  note_tx_queued(static_cast<std::int64_t>(conn.write_buf.size() - before));
}

void Server::flush(Loop& loop, Connection& conn) {
  while (conn.write_off < conn.write_buf.size()) {
    const ssize_t n =
        ::send(conn.fd, conn.write_buf.data() + conn.write_off,
               conn.write_buf.size() - conn.write_off, MSG_NOSIGNAL);
    if (n > 0) {
      conn.write_off += static_cast<std::size_t>(n);
      tx_bytes_.fetch_add(static_cast<std::uint64_t>(n),
                          std::memory_order_relaxed);
      if (m_tx_bytes_ != nullptr) m_tx_bytes_->inc(static_cast<std::uint64_t>(n));
      note_tx_queued(-static_cast<std::int64_t>(n));
      continue;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    close_conn(loop, conn);
    return;
  }
  if (conn.write_off == conn.write_buf.size()) {
    conn.write_buf.clear();
    conn.write_off = 0;
  } else if (conn.write_off > (1u << 16)) {
    conn.write_buf.erase(conn.write_buf.begin(),
                         conn.write_buf.begin() +
                             static_cast<std::ptrdiff_t>(conn.write_off));
    conn.write_off = 0;
  }

  const std::size_t backlog = conn.write_buf.size() - conn.write_off;
  if (backlog > options_.max_tx_buffer_bytes) {
    // The peer stopped reading; shed it rather than buffer unboundedly.
    close_conn(loop, conn);
    return;
  }
  const bool want = backlog > 0;
  if (want != conn.want_write) {
    epoll_event ev{};
    ev.events = EPOLLIN | (want ? EPOLLOUT : 0u);
    ev.data.fd = conn.fd;
    if (::epoll_ctl(loop.epoll_fd, EPOLL_CTL_MOD, conn.fd, &ev) == 0) {
      conn.want_write = want;
    }
  }
}

void Server::close_conn(Loop& loop, Connection& conn) {
  note_tx_queued(
      -static_cast<std::int64_t>(conn.write_buf.size() - conn.write_off));
  ::epoll_ctl(loop.epoll_fd, EPOLL_CTL_DEL, conn.fd, nullptr);
  ::close(conn.fd);
  loop.conns.erase(conn.fd);  // destroys conn; do not touch it after this
  connections_open_.fetch_sub(1, std::memory_order_relaxed);
  if (m_open_ != nullptr) {
    m_open_->set(static_cast<double>(
        connections_open_.load(std::memory_order_relaxed)));
  }
}

}  // namespace ddos::net
