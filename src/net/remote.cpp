#include "net/remote.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <deque>
#include <exception>
#include <stdexcept>
#include <thread>
#include <vector>

#include "net/client.h"
#include "obs/obs.h"

namespace ddos::net {

namespace {

using Clock = std::chrono::steady_clock;

struct alignas(64) LiveCount {
  std::atomic<std::uint64_t> ops{0};
};

/// Fold one wire answer with the shared driver folds; the request op says
/// which response opcode is legal. An Error frame (or a mismatched
/// opcode) is a drive failure, not a foldable answer.
std::uint64_t fold_answer(std::uint64_t fp, const serve::Op& op,
                          const Answer& answer) {
  if (answer.opcode == Opcode::Error) {
    throw std::runtime_error("net::drive_remote: server error: " +
                             answer.error.message);
  }
  switch (op.type) {
    case serve::QueryType::PointLookup:
      if (answer.opcode != Opcode::PointOk) break;
      return serve::fold_point_answer(fp, answer.point.found,
                                      answer.point.summary,
                                      answer.point.series_len);
    case serve::QueryType::TopK:
      if (answer.opcode != Opcode::TopKOk) break;
      return serve::fold_top_k_answer(
          fp, std::span<const serve::TopEntry>(*answer.rows));
    case serve::QueryType::WindowScan:
      if (answer.opcode != Opcode::ScanOk) break;
      return serve::fold_window_scan_answer(fp, answer.scan);
  }
  throw std::runtime_error(
      std::string("net::drive_remote: response opcode ") +
      to_string(answer.opcode) + " does not answer request " +
      to_string(op.type));
}

struct ThreadArgs {
  const RemoteDriveOptions* options;
  const serve::WorkloadSpec* spec;
  std::uint64_t key_count;
  unsigned thread_id;
  Clock::time_point start;
  Clock::time_point deadline;  // duration mode only
  bool fixed_ops;
  serve::ParticipantOutcome* out;
  LiveCount* live;
};

void run_closed_loop(const ThreadArgs& args) {
  Client client;
  client.connect(args.options->host, args.options->port);
  serve::Workload wl(*args.spec, args.key_count, args.thread_id);
  serve::ParticipantOutcome& me = *args.out;
  std::uint64_t fp = 0;

  Clock::time_point t_prev = Clock::now();
  for (;;) {
    if (args.fixed_ops && me.ops == args.options->ops_per_thread) break;
    const serve::Op op = wl.next();
    const auto type_index = static_cast<std::size_t>(op.type);
    client.queue_op(op, static_cast<std::uint32_t>(me.ops));
    client.flush();
    const Answer& answer = client.recv();
    if (answer.request_id != static_cast<std::uint32_t>(me.ops)) {
      throw std::runtime_error("net::drive_remote: response id mismatch");
    }
    fp = fold_answer(fp, op, answer);
    const Clock::time_point t_now = Clock::now();
    me.hists[type_index].add(
        std::chrono::duration<double, std::micro>(t_now - t_prev).count());
    t_prev = t_now;
    ++me.ops;
    ++me.type_ops[type_index];
    args.live->ops.store(me.ops, std::memory_order_relaxed);
    if (!args.fixed_ops && t_now >= args.deadline) break;
  }
  me.fingerprint = fp;
}

void run_open_loop(const ThreadArgs& args) {
  Client client;
  client.connect(args.options->host, args.options->port);
  serve::Workload wl(*args.spec, args.key_count, args.thread_id);
  serve::ParticipantOutcome& me = *args.out;
  std::uint64_t fp = 0;

  const double qps_thread =
      args.options->target_qps /
      static_cast<double>(args.options->connections);
  const auto interval = std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double>(1.0 / qps_thread));

  struct Pending {
    Clock::time_point intended;
    serve::Op op;
  };
  std::deque<Pending> pending;
  std::uint64_t sent = 0;

  const auto complete = [&](const Answer& answer) {
    const Pending p = pending.front();
    pending.pop_front();
    if (answer.request_id != static_cast<std::uint32_t>(me.ops)) {
      throw std::runtime_error("net::drive_remote: response id mismatch");
    }
    fp = fold_answer(fp, p.op, answer);
    const auto type_index = static_cast<std::size_t>(p.op.type);
    // Coordinated-omission-safe: latency runs from the op's *intended*
    // send time, so schedule slip caused by a slow server is charged to
    // the server, not silently dropped from the distribution.
    me.hists[type_index].add(std::chrono::duration<double, std::micro>(
                                 Clock::now() - p.intended)
                                 .count());
    ++me.ops;
    ++me.type_ops[type_index];
    args.live->ops.store(me.ops, std::memory_order_relaxed);
  };

  for (;;) {
    const Clock::time_point intended =
        args.start + interval * static_cast<std::int64_t>(sent);
    const bool want_send =
        args.fixed_ops ? sent < args.options->ops_per_thread
                       : intended < args.deadline;
    if (!want_send) {
      if (pending.empty()) break;
      complete(client.recv());  // blocking tail drain
      continue;
    }
    // Drain completions opportunistically while waiting for the slot; the
    // send itself happens at (or as soon as possible after) the intended
    // time even when earlier responses are still outstanding.
    while (Clock::now() < intended) {
      if (const Answer* answer = client.try_recv()) {
        complete(*answer);
      } else {
        std::this_thread::sleep_until(intended);
      }
    }
    const serve::Op op = wl.next();
    client.queue_op(op, static_cast<std::uint32_t>(sent));
    client.flush();
    pending.push_back(Pending{intended, op});
    ++sent;
    while (const Answer* answer = client.try_recv()) complete(*answer);
  }
  me.fingerprint = fp;
}

}  // namespace

serve::DriveReport drive_remote(const RemoteDriveOptions& options) {
  if (options.connections == 0) {
    throw std::invalid_argument("net::drive_remote: connections must be > 0");
  }
  if (options.target_qps < 0.0) {
    throw std::invalid_argument("net::drive_remote: target_qps must be >= 0");
  }

  // One Hello up front: the workload needs the server's key universe and
  // day range before any thread can generate ops.
  HelloResult hello;
  {
    Client probe;
    probe.connect(options.host, options.port);
    hello = probe.hello();
  }
  if (hello.key_count == 0) {
    throw std::invalid_argument(
        "net::drive_remote: server engine key universe is empty");
  }

  serve::WorkloadSpec spec = options.workload;
  spec.day_min = hello.day_min;
  spec.day_max = hello.day_max;
  // Surface spec errors here, on the caller, not inside the threads.
  { serve::Workload probe_wl(spec, hello.key_count, 0); }

  const unsigned connections = options.connections;
  std::vector<serve::ParticipantOutcome> outcomes(connections);
  std::vector<LiveCount> live(connections);
  std::vector<std::exception_ptr> errors(connections);

  obs::Observer* observer = obs::Observer::installed();
  const obs::ScopedProgressSource progress(
      observer ? &observer->progress_sources() : nullptr, "serve.remote_ops",
      [&live] {
        std::uint64_t total = 0;
        for (const LiveCount& c : live) {
          total += c.ops.load(std::memory_order_relaxed);
        }
        return total;
      });

  const bool open_loop = options.target_qps > 0.0;
  const Clock::time_point start = Clock::now();
  const Clock::time_point deadline =
      start + std::chrono::duration_cast<Clock::duration>(
                  std::chrono::duration<double>(
                      std::max(options.duration_s, 0.0)));

  std::vector<std::thread> threads;
  threads.reserve(connections);
  for (unsigned t = 0; t < connections; ++t) {
    threads.emplace_back([&, t] {
      ThreadArgs args;
      args.options = &options;
      args.spec = &spec;
      args.key_count = hello.key_count;
      args.thread_id = t;
      args.start = start;
      args.deadline = deadline;
      args.fixed_ops = options.ops_per_thread > 0;
      args.out = &outcomes[t];
      args.live = &live[t];
      try {
        if (open_loop) {
          run_open_loop(args);
        } else {
          run_closed_loop(args);
        }
      } catch (...) {
        errors[t] = std::current_exception();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (const std::exception_ptr& e : errors) {
    if (e) std::rethrow_exception(e);
  }

  const double wall_s =
      std::chrono::duration<double>(Clock::now() - start).count();
  serve::DriveReport report = serve::finalize_drive(outcomes, wall_s);
  report.target_qps = options.target_qps;
  return report;
}

}  // namespace ddos::net
