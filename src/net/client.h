// net::Client — one blocking TCP connection speaking the net::codec
// protocol.
//
// The client is deliberately dumb: it owns a socket, an rx buffer and a
// tx buffer, encodes requests, and decodes whole response frames. Policy
// — closed vs open loop, pipelining depth, latency accounting,
// fingerprint folding — lives in the remote driver (net/remote.h), which
// composes these primitives. Pipelining works by queueing several
// requests before flushing; the server answers one connection's requests
// in receive order, so responses come back FIFO and the caller can match
// them to requests without a map (request ids are still echoed and
// checked).
//
// recv() blocks until one complete response frame is buffered; try_recv()
// drains whatever the kernel already has (MSG_DONTWAIT) and returns
// nullptr when no complete frame is available — the open-loop driver
// calls it between scheduled sends so waiting for the next send slot also
// drains completions. Malformed server bytes throw std::runtime_error:
// a client has no way to resynchronize a broken stream.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/codec.h"
#include "serve/workload.h"

namespace ddos::net {

/// One decoded response frame. Aggregate of all response kinds; `opcode`
/// says which member is live. `rows` aliases client-owned scratch and is
/// valid until the next recv()/try_recv().
struct Answer {
  Opcode opcode = Opcode::Error;
  std::uint32_t request_id = 0;
  HelloResult hello;
  WirePointResult point;
  const std::vector<serve::TopEntry>* rows = nullptr;  // TopKOk
  serve::WindowScanResult scan;
  WireError error;
};

class Client {
 public:
  Client() = default;
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;

  /// Connect (blocking) to host:port; throws std::runtime_error with the
  /// errno text on failure.
  void connect(const std::string& host, std::uint16_t port);
  void close();
  bool connected() const { return fd_ >= 0; }

  /// Synchronous Hello round trip (flushes any queued requests first).
  HelloResult hello(std::uint32_t request_id = 0);

  /// Encode one workload op into the tx buffer (nothing is sent until
  /// flush()). The request id is echoed by the server.
  void queue_op(const serve::Op& op, std::uint32_t request_id);
  /// Blocking send of everything queued.
  void flush();

  /// Block until the next whole response frame; decodes it. Throws on
  /// connection loss or malformed bytes.
  const Answer& recv();
  /// Non-blocking: decode a buffered frame if one is complete, else pull
  /// whatever the kernel has ready and retry once. nullptr = nothing yet.
  const Answer* try_recv();

 private:
  bool parse_buffered();          // rx_buf_ -> answer_; false = need more
  bool fill(bool blocking);       // read() into rx_buf_; false = would block
  void decode_into_answer(const Frame& frame);

  int fd_ = -1;
  std::vector<std::uint8_t> tx_buf_;
  std::vector<std::uint8_t> rx_buf_;
  std::size_t rx_off_ = 0;
  std::vector<serve::TopEntry> rows_;
  Answer answer_;
};

}  // namespace ddos::net
