// net::Server — the epoll TCP front-end that puts serve::QueryEngine on
// the wire.
//
// Threading model: `threads` event-loop threads, each owning one epoll
// instance. The single listening socket is registered in every loop with
// EPOLLEXCLUSIVE, so the kernel wakes exactly one loop per pending
// accept and connections spread across loops without a dedicated
// acceptor; a connection then lives its whole life on the loop that
// accepted it (its fd is in exactly one epoll set), so per-connection
// state — read buffer, write buffer, frame cursor — is single-threaded
// by construction and needs no locks. Sockets are non-blocking,
// level-triggered; responses are appended to the connection's write
// buffer and flushed opportunistically, with EPOLLOUT armed only while
// a partial write is pending.
//
// Query path: requests are decoded with net::codec's strict decoder and
// executed inline on the event loop against the current engine — every
// engine query is const over immutable state (serve/query_engine.h), so
// N loops query one engine with no locks anywhere on the hot path. A
// malformed frame (bad magic/version/opcode, truncated or oversized
// body) is answered with one best-effort Error frame and the connection
// is closed: framing errors are never resynchronized over.
//
// Live re-fill: the engine sits behind a mutex-guarded
// shared_ptr<const EngineHandle> (RCU-style: the mutex covers only the
// pointer hand-off, never a query — libstdc++'s atomic<shared_ptr> is
// an internal spinlock TSan cannot see through, so a plain mutex buys
// verifiable correctness at the same cost). install_engine() is one
// guarded pointer swap; a loop pins the handle ONCE per event batch, so
// the lock is taken per epoll wakeup, not per request, and requests
// already being served finish against the engine they started with
// while new batches see the replacement — queries keep flowing through
// the cutover, and the old engine (plus the StoredRun backing it) is
// destroyed when the last in-flight batch drops its reference. Clients
// observe the swap as a bumped engine_epoch in Hello answers.
//
// Observability: with an installed obs::Observer the server publishes
// net.connections_accepted / net.connections_open / net.rx_bytes /
// net.tx_bytes / net.malformed_frames / net.engine_swaps counters and
// gauges, a net.queue_depth_bytes gauge (pending response bytes across
// all write buffers), per-op net.request_us{op=...} service-time
// histograms, and a `net.requests` progress source for the stall
// watchdog.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "net/codec.h"
#include "obs/obs.h"
#include "scenario/driver.h"
#include "serve/query_engine.h"

namespace ddos::net {

/// A query engine plus whatever owns its run artifacts, shared between
/// the server's event loops behind one atomic pointer. `load` owns the
/// whole chain (DRS store -> StoredRun -> engine); `view` wraps an
/// externally-owned engine (tests, bench, the in-process CLI path) whose
/// run the caller must keep alive for the handle's lifetime.
class EngineHandle {
 public:
  static std::shared_ptr<const EngineHandle> load(
      const std::string& store_path, std::uint64_t epoch);
  static std::shared_ptr<const EngineHandle> view(
      const serve::QueryEngine& engine, std::uint64_t epoch);

  const serve::QueryEngine& engine() const { return *engine_; }
  std::uint64_t epoch() const { return epoch_; }

 private:
  EngineHandle() = default;

  std::unique_ptr<scenario::StoredRun> run_;          // load() only
  std::unique_ptr<serve::QueryEngine> owned_engine_;  // load() only
  const serve::QueryEngine* engine_ = nullptr;
  std::uint64_t epoch_ = 0;
};

struct ServerOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;  // 0 = ephemeral; Server::port() has the result
  unsigned threads = 1;    // event-loop threads, >= 1
  /// Close a connection whose pending response bytes exceed this (a
  /// client that stops reading must not buffer the server into the
  /// ground).
  std::size_t max_tx_buffer_bytes = 16u << 20;
  /// Test hook, run on the event loop before each request executes (the
  /// open-loop coordinated-omission test injects server stalls here).
  /// Must be thread-safe; empty = disabled.
  std::function<void(Opcode)> before_request;
};

/// Totals across all event loops, readable at any time.
struct ServerStats {
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_open = 0;
  std::uint64_t requests = 0;
  std::uint64_t rx_bytes = 0;
  std::uint64_t tx_bytes = 0;
  std::uint64_t malformed_frames = 0;
  std::uint64_t engine_swaps = 0;
};

class Server {
 public:
  /// Takes the initial engine; the server is inert until start().
  Server(std::shared_ptr<const EngineHandle> engine, ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind + listen + spawn the event loops. Throws std::runtime_error
  /// (with errno text) when the address cannot be bound.
  void start();
  /// Idempotent; joins the loops and closes every socket.
  void stop();

  bool running() const { return running_; }
  /// Bound port (after start(); resolves port 0 to the real ephemeral
  /// port).
  std::uint16_t port() const { return bound_port_; }

  /// Atomically swap the serving engine; in-flight batches finish on the
  /// old one, new batches see the new one immediately.
  void install_engine(std::shared_ptr<const EngineHandle> engine);
  std::shared_ptr<const EngineHandle> current_engine() const;

  ServerStats stats() const;

 private:
  struct Connection;
  struct Loop;

  void loop_main(Loop& loop);
  void accept_ready(Loop& loop);
  void conn_readable(Loop& loop, Connection& conn);
  void conn_writable(Loop& loop, Connection& conn);
  /// Decode + execute every complete frame in the read buffer. Returns
  /// false when the connection must close (malformed input).
  bool drain_frames(Connection& conn, const EngineHandle& engine);
  void handle_frame(Connection& conn, const Frame& frame,
                    const EngineHandle& engine);
  void flush(Loop& loop, Connection& conn);
  void close_conn(Loop& loop, Connection& conn);
  void note_tx_queued(std::int64_t delta);

  ServerOptions options_;
  mutable std::mutex engine_mu_;  // guards engine_ (the pointer only)
  std::shared_ptr<const EngineHandle> engine_;

  int listen_fd_ = -1;
  std::uint16_t bound_port_ = 0;
  std::vector<std::unique_ptr<Loop>> loops_;
  std::vector<std::thread> threads_;
  std::atomic<bool> stop_{false};
  bool running_ = false;

  // stats cells (relaxed; exactness per counter, not across counters)
  std::atomic<std::uint64_t> connections_accepted_{0};
  std::atomic<std::uint64_t> connections_open_{0};
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> rx_bytes_{0};
  std::atomic<std::uint64_t> tx_bytes_{0};
  std::atomic<std::uint64_t> malformed_frames_{0};
  std::atomic<std::uint64_t> engine_swaps_{0};
  std::atomic<std::int64_t> tx_queued_bytes_{0};

  // Resolved once at start() when an observer is installed; nullptr
  // otherwise (the null-sink discipline every hot path here follows).
  obs::Counter* m_requests_ = nullptr;
  obs::Counter* m_rx_bytes_ = nullptr;
  obs::Counter* m_tx_bytes_ = nullptr;
  obs::Counter* m_accepted_ = nullptr;
  obs::Counter* m_malformed_ = nullptr;
  obs::Counter* m_swaps_ = nullptr;
  obs::Gauge* m_open_ = nullptr;
  obs::Gauge* m_queue_depth_ = nullptr;
  std::array<obs::HistogramMetric*, 4> m_request_us_{};  // hello/point/topk/scan
  std::optional<obs::ScopedProgressSource> progress_;
};

}  // namespace ddos::net
