// net::drive_remote — the load driver for a networked serve engine,
// closed- and open-loop.
//
// Closed loop (target_qps == 0) mirrors serve::drive over the wire: each
// of `connections` threads owns one Client and runs send -> recv -> fold,
// so offered load self-clocks to service rate. Thread t's op stream is
// serve::Workload(seed, t) — the exact stream the local driver gives
// participant t — and every answer is folded with the shared
// fold_*_answer helpers, so a remote drive with C connections against an
// engine must produce bit-identical per-thread fingerprints to a local
// drive with C pool threads over the same (seed, mix, engine). That
// parity is the wire protocol's regression gate: any codec field drift
// or reordering shows up as a fingerprint mismatch.
//
// Open loop (target_qps > 0) sends each op at its *intended* time —
// op i of a thread is scheduled at start + i/qps_thread regardless of
// how the previous ops fared — and measures latency from that intended
// send time to response completion. This is the coordinated-omission
// correction (YCSB's fixed-rate mode, wg/wrk2's --rate): a stalled
// server cannot slow the request schedule down and thereby hide its own
// stall from the percentiles, because the schedule is fixed a priori;
// queueing delay lands in the histogram instead of silently stretching
// the op stream. Requests pipeline on the connection while the server is
// behind (responses return FIFO, ids are checked), and the fingerprint
// fold happens in completion order == send order, so open-loop runs keep
// the same determinism contract as closed-loop ones.
//
// Both modes end with serve::finalize_drive, the epilogue shared with
// the local driver — one merge/quantile/report path, two transports.
#pragma once

#include <cstdint>
#include <string>

#include "serve/driver.h"

namespace ddos::net {

struct RemoteDriveOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  /// Driver threads; each owns one TCP connection. Fingerprint parity
  /// with a local drive requires this to equal the local thread count.
  unsigned connections = 1;
  serve::WorkloadSpec workload;  // day_min/day_max overwritten from Hello
  /// Per-connection fixed op budget (> 0: deterministic fixed-ops mode).
  std::uint64_t ops_per_thread = 0;
  /// Wall-clock budget when ops_per_thread == 0.
  double duration_s = 2.0;
  /// > 0 selects open loop: aggregate intended rate across all
  /// connections, split evenly; 0 is closed loop.
  double target_qps = 0.0;
};

/// Drive a remote server. Blocks until every connection finishes; throws
/// std::runtime_error on connect failure, server-side errors or protocol
/// violations. The report's target_qps echoes the open-loop schedule
/// (0 for closed loop).
serve::DriveReport drive_remote(const RemoteDriveOptions& options);

}  // namespace ddos::net
