#include "telescope/darknet.h"

#include <stdexcept>

namespace ddos::telescope {

Darknet::Darknet(std::vector<netsim::Prefix> prefixes)
    : prefixes_(std::move(prefixes)) {
  if (prefixes_.empty())
    throw std::invalid_argument("Darknet: no prefixes");
  for (std::size_t i = 0; i < prefixes_.size(); ++i) {
    for (std::size_t j = i + 1; j < prefixes_.size(); ++j) {
      if (prefixes_[i].contains(prefixes_[j]) ||
          prefixes_[j].contains(prefixes_[i]))
        throw std::invalid_argument("Darknet: overlapping prefixes");
    }
  }
}

Darknet Darknet::ucsd_like() {
  // Placeholder blocks in experimental space, sized like the UCSD-NT.
  return Darknet({
      netsim::Prefix(netsim::IPv4Addr(44, 0, 0, 0), 9),
      netsim::Prefix(netsim::IPv4Addr(45, 128, 0, 0), 10),
  });
}

std::uint64_t Darknet::address_count() const {
  std::uint64_t total = 0;
  for (const auto& p : prefixes_) total += p.size();
  return total;
}

double Darknet::ipv4_fraction() const {
  return static_cast<double>(address_count()) / 4294967296.0;
}

std::uint32_t Darknet::slash16_count() const {
  std::uint64_t total = 0;
  for (const auto& p : prefixes_) {
    if (p.length() <= 16) {
      total += std::uint64_t{1} << (16 - p.length());
    } else {
      total += 1;  // A prefix longer than /16 still spans one /16.
    }
  }
  return static_cast<std::uint32_t>(total);
}

bool Darknet::contains(netsim::IPv4Addr addr) const {
  for (const auto& p : prefixes_) {
    if (p.contains(addr)) return true;
  }
  return false;
}

}  // namespace ddos::telescope
