// AmpPot-style amplification honeypot fleet (Krämer et al., RAID 2015).
//
// The telescope's structural blind spot (§4.3): reflected attacks spoof
// the *victim's* address toward reflectors, so no backscatter reaches a
// darknet. Jonker et al. (IMC 2017) paired the telescope with AmpPot —
// honeypots masquerading as open reflectors — and found ~60% of attacks
// randomly spoofed (telescope-visible) and ~40% reflected
// (honeypot-visible). The paper lists this pairing as the way to widen
// coverage; this module implements it so the coverage analysis can run.
//
// Model: a reflection attack drives `reflectors_used` reflectors drawn
// uniformly from the global open-reflector population. A fleet of H
// honeypot reflectors observes the attack iff at least one of its members
// is drawn — probability 1 - (1 - H/R)^M — and estimates the attack rate
// from the per-honeypot request rate times the amplification factor.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "attack/attack.h"
#include "netsim/rng.h"
#include "netsim/simtime.h"

namespace ddos::telescope {

struct AmpPotParams {
  std::uint32_t honeypots = 48;              // fleet size (AmpPot ran ~21)
  std::uint32_t reflector_population = 2'000'000;  // global open reflectors
  std::uint32_t mean_reflectors_used = 6'000;      // per attack, geometric-ish
  double amplification_factor = 30.0;        // response/request byte ratio
  std::uint64_t seed = 77;
};

/// One honeypot-fleet sighting of a reflection attack.
struct AmpPotObservation {
  netsim::WindowIndex first_window = 0;
  netsim::WindowIndex last_window = 0;
  netsim::IPv4Addr victim;
  std::uint32_t honeypots_hit = 0;
  double estimated_pps = 0.0;  // victim-side, extrapolated from the fleet
  attack::Protocol protocol = attack::Protocol::UDP;
  std::uint16_t port = 0;

  std::int64_t duration_s() const {
    return (last_window - first_window + 1) * netsim::kSecondsPerWindow;
  }
};

class AmpPotFleet {
 public:
  explicit AmpPotFleet(AmpPotParams params);

  const AmpPotParams& params() const { return params_; }

  /// Probability the fleet sees an attack using `reflectors_used` sources.
  double detection_probability(std::uint32_t reflectors_used) const;

  /// Observe one attack. Returns nullopt for non-reflected attacks (the
  /// honeypots never see direct or randomly-spoofed floods) and for
  /// reflected attacks whose reflector draw misses the fleet.
  std::optional<AmpPotObservation> observe(const attack::AttackSpec& attack,
                                           netsim::Rng& rng) const;

  /// Run a whole schedule through the fleet (deterministic in the fleet
  /// seed; independent of schedule order).
  std::vector<AmpPotObservation> observe_all(
      const std::vector<attack::AttackSpec>& attacks) const;

 private:
  AmpPotParams params_;
};

/// Coverage accounting for the telescope + honeypot pairing (§4.3 and
/// Jonker et al.'s 60/40 split).
struct CoverageSummary {
  std::uint64_t total_attacks = 0;
  std::uint64_t random_spoofed = 0;   // telescope-eligible
  std::uint64_t reflected = 0;        // honeypot-eligible
  std::uint64_t direct = 0;           // invisible to both
  std::uint64_t telescope_seen = 0;
  std::uint64_t amppot_seen = 0;

  double union_coverage() const {
    return total_attacks ? static_cast<double>(telescope_seen + amppot_seen) /
                               total_attacks
                         : 0.0;
  }
  double telescope_coverage() const {
    return total_attacks
               ? static_cast<double>(telescope_seen) / total_attacks
               : 0.0;
  }
};

}  // namespace ddos::telescope
