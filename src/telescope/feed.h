// RSDoSFeed — end-to-end generation of the curated attack feed from an
// attack schedule through the darknet, plus the summary statistics the
// paper reports about it (Table 1) and the pps extrapolation helper
// (footnote 2: victim pps ≈ telescope ppm × extrapolation / 60).
#pragma once

#include <cstdint>
#include <functional>
#include <ostream>
#include <unordered_set>
#include <utility>
#include <vector>

#include "attack/schedule.h"
#include "telescope/darknet.h"
#include "telescope/rsdos.h"

namespace ddos::telescope {

/// Summary row matching Table 1 of the paper.
struct FeedSummary {
  std::uint64_t attacks = 0;        // stitched events
  std::uint64_t unique_ips = 0;     // distinct victim addresses
  std::uint64_t unique_slash24 = 0; // distinct /24 prefixes
  std::uint64_t unique_asn = 0;     // distinct origin ASes (via callback)
};

class RSDoSFeed {
 public:
  RSDoSFeed(InferenceParams inference, attack::BackscatterModelParams model);

  /// Run every attack in `schedule` through `darknet` and retain the
  /// windows that pass the inference thresholds. Deterministic in `seed`.
  void ingest(const attack::AttackSchedule& schedule, const Darknet& darknet,
              std::uint64_t seed);

  /// Streaming ingest: instead of retaining the records, hand each
  /// parallel shard's batch to `sink` — in deterministic shard order, so
  /// concatenating the batches reproduces exactly what ingest() would have
  /// appended to records(). The records are moved out and released as soon
  /// as the sink returns, which is what bounds the streaming driver's
  /// memory: the sink folds them into the incremental event stitcher and
  /// the DRS feed columns, never a full vector. Returns the record count;
  /// identical observer metrics to ingest().
  std::size_t ingest_stream(
      const attack::AttackSchedule& schedule, const Darknet& darknet,
      std::uint64_t seed,
      const std::function<void(std::vector<RSDoSRecord>&&)>& sink);

  /// Append a pre-built record (tests / replays).
  void add_record(const RSDoSRecord& record) { records_.push_back(record); }

  /// Replace all records wholesale (DRS store load / replays).
  void set_records(std::vector<RSDoSRecord> records) {
    records_ = std::move(records);
  }

  const std::vector<RSDoSRecord>& records() const { return records_; }

  /// Stitched per-victim events (recomputed on call).
  std::vector<RSDoSEvent> events() const;

  /// The stitched events as per-day batches (grouped by last attacked
  /// day), the unit the streaming driver consumes — indices reference the
  /// events() vector so the canonical order survives day-wise processing.
  std::vector<DayEventBatch> day_batches() const {
    return group_events_by_day(events());
  }

  /// Table-1 style totals. `origin_of` maps a victim IP to its origin AS
  /// (0 = unrouted, excluded from the AS count).
  template <typename OriginFn>
  FeedSummary summarize(OriginFn&& origin_of) const {
    FeedSummary s;
    std::unordered_set<netsim::IPv4Addr> ips;
    std::unordered_set<netsim::IPv4Addr> nets;
    std::unordered_set<std::uint32_t> asns;
    for (const auto& ev : events()) {
      ++s.attacks;
      ips.insert(ev.victim);
      nets.insert(ev.victim.slash24());
      const std::uint32_t asn = origin_of(ev.victim);
      if (asn != 0) asns.insert(asn);
    }
    s.unique_ips = ips.size();
    s.unique_slash24 = nets.size();
    s.unique_asn = asns.size();
    return s;
  }

  /// Victim pps inferred from a telescope ppm reading.
  double extrapolate_pps(double telescope_ppm, const Darknet& darknet) const {
    return telescope_ppm * darknet.extrapolation_factor() / 60.0;
  }

  /// Serialise all records as CSV (header + rows).
  void write_csv(std::ostream& out) const;

  /// Load records from a write_csv() stream (header optional). Returns
  /// the number of records read; malformed rows are skipped.
  std::size_t read_csv(std::istream& in);

  const InferenceParams& inference() const { return inference_; }

 private:
  InferenceParams inference_;
  attack::BackscatterModelParams model_;
  std::vector<RSDoSRecord> records_;
};

}  // namespace ddos::telescope
