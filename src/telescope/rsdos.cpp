#include "telescope/rsdos.h"

#include <algorithm>

#include "util/strings.h"

namespace ddos::telescope {

std::string RSDoSRecord::csv_header() {
  return "window,victim,slash16,protocol,first_port,unique_ports,max_ppm,"
         "packets";
}

std::string RSDoSRecord::to_csv_row() const {
  return std::to_string(window) + "," + victim.to_string() + "," +
         std::to_string(distinct_slash16) + "," +
         attack::to_string(protocol) + "," + std::to_string(first_port) +
         "," + std::to_string(unique_ports) + "," +
         util::format_fixed(max_ppm, 1) + "," + std::to_string(packets);
}

std::optional<RSDoSRecord> RSDoSRecord::from_csv_row(std::string_view line) {
  const auto fields = util::split(line, ',');
  if (fields.size() != 8) return std::nullopt;
  RSDoSRecord rec;
  std::uint64_t v = 0;
  if (!util::parse_u64(fields[0], v)) return std::nullopt;
  rec.window = static_cast<netsim::WindowIndex>(v);
  const auto victim = netsim::IPv4Addr::parse(fields[1]);
  if (!victim) return std::nullopt;
  rec.victim = *victim;
  if (!util::parse_u64(fields[2], v) || v > 0xFFFFFFFFu) return std::nullopt;
  rec.distinct_slash16 = static_cast<std::uint32_t>(v);
  if (util::iequals(fields[3], "TCP")) rec.protocol = attack::Protocol::TCP;
  else if (util::iequals(fields[3], "UDP")) rec.protocol = attack::Protocol::UDP;
  else if (util::iequals(fields[3], "ICMP")) rec.protocol = attack::Protocol::ICMP;
  else return std::nullopt;
  if (!util::parse_u64(fields[4], v) || v > 0xFFFF) return std::nullopt;
  rec.first_port = static_cast<std::uint16_t>(v);
  if (!util::parse_u64(fields[5], v) || v > 0xFFFF) return std::nullopt;
  rec.unique_ports = static_cast<std::uint16_t>(v);
  if (!util::parse_double(fields[6], rec.max_ppm)) return std::nullopt;
  if (!util::parse_u64(fields[7], rec.packets)) return std::nullopt;
  return rec;
}

bool passes_thresholds(const attack::BackscatterWindow& bw,
                       const InferenceParams& params) {
  if (bw.packets < params.min_packets_per_window) return false;
  if (bw.distinct_slash16 < params.min_distinct_slash16) return false;
  if (bw.peak_ppm < params.min_ppm) return false;
  return true;
}

RSDoSRecord to_record(const attack::BackscatterWindow& bw) {
  RSDoSRecord rec;
  rec.window = bw.window;
  rec.victim = bw.victim;
  rec.distinct_slash16 = bw.distinct_slash16;
  rec.protocol = bw.protocol;
  rec.first_port = bw.first_port;
  rec.unique_ports = bw.unique_ports;
  rec.max_ppm = bw.peak_ppm;
  rec.packets = bw.packets;
  return rec;
}

std::vector<RSDoSEvent> segment_events(std::vector<RSDoSRecord> records,
                                       const InferenceParams& params) {
  std::sort(records.begin(), records.end(),
            [](const RSDoSRecord& a, const RSDoSRecord& b) {
              if (a.victim != b.victim) return a.victim < b.victim;
              return a.window < b.window;
            });
  std::vector<RSDoSEvent> events;
  for (std::size_t i = 0; i < records.size();) {
    const RSDoSRecord& first = records[i];
    RSDoSEvent ev;
    ev.victim = first.victim;
    ev.start_window = ev.end_window = first.window;
    ev.max_ppm = first.max_ppm;
    ev.total_packets = first.packets;
    ev.max_slash16 = first.distinct_slash16;
    ev.protocol = first.protocol;
    ev.first_port = first.first_port;
    ev.max_unique_ports = first.unique_ports;
    std::size_t j = i + 1;
    while (j < records.size() && records[j].victim == ev.victim &&
           records[j].window - ev.end_window <=
               static_cast<netsim::WindowIndex>(params.max_gap_windows) + 1) {
      ev.end_window = records[j].window;
      ev.max_ppm = std::max(ev.max_ppm, records[j].max_ppm);
      ev.total_packets += records[j].packets;
      ev.max_slash16 = std::max(ev.max_slash16, records[j].distinct_slash16);
      ev.max_unique_ports =
          std::max(ev.max_unique_ports, records[j].unique_ports);
      ++j;
    }
    events.push_back(ev);
    i = j;
  }
  return events;
}

}  // namespace ddos::telescope
