#include "telescope/rsdos.h"

#include <algorithm>
#include <cstddef>
#include <tuple>

#include "util/strings.h"

namespace ddos::telescope {

std::string RSDoSRecord::csv_header() {
  return "window,victim,slash16,protocol,first_port,unique_ports,max_ppm,"
         "packets";
}

std::string RSDoSRecord::to_csv_row() const {
  return std::to_string(window) + "," + victim.to_string() + "," +
         std::to_string(distinct_slash16) + "," +
         attack::to_string(protocol) + "," + std::to_string(first_port) +
         "," + std::to_string(unique_ports) + "," +
         util::format_fixed(max_ppm, 1) + "," + std::to_string(packets);
}

std::optional<RSDoSRecord> RSDoSRecord::from_csv_row(std::string_view line) {
  const auto fields = util::split(line, ',');
  if (fields.size() != 8) return std::nullopt;
  RSDoSRecord rec;
  std::uint64_t v = 0;
  if (!util::parse_u64(fields[0], v)) return std::nullopt;
  rec.window = static_cast<netsim::WindowIndex>(v);
  const auto victim = netsim::IPv4Addr::parse(fields[1]);
  if (!victim) return std::nullopt;
  rec.victim = *victim;
  if (!util::parse_u64(fields[2], v) || v > 0xFFFFFFFFu) return std::nullopt;
  rec.distinct_slash16 = static_cast<std::uint32_t>(v);
  if (util::iequals(fields[3], "TCP")) rec.protocol = attack::Protocol::TCP;
  else if (util::iequals(fields[3], "UDP")) rec.protocol = attack::Protocol::UDP;
  else if (util::iequals(fields[3], "ICMP")) rec.protocol = attack::Protocol::ICMP;
  else return std::nullopt;
  if (!util::parse_u64(fields[4], v) || v > 0xFFFF) return std::nullopt;
  rec.first_port = static_cast<std::uint16_t>(v);
  if (!util::parse_u64(fields[5], v) || v > 0xFFFF) return std::nullopt;
  rec.unique_ports = static_cast<std::uint16_t>(v);
  if (!util::parse_double(fields[6], rec.max_ppm)) return std::nullopt;
  if (!util::parse_u64(fields[7], rec.packets)) return std::nullopt;
  return rec;
}

bool passes_thresholds(const attack::BackscatterWindow& bw,
                       const InferenceParams& params) {
  if (bw.packets < params.min_packets_per_window) return false;
  if (bw.distinct_slash16 < params.min_distinct_slash16) return false;
  if (bw.peak_ppm < params.min_ppm) return false;
  return true;
}

RSDoSRecord to_record(const attack::BackscatterWindow& bw) {
  RSDoSRecord rec;
  rec.window = bw.window;
  rec.victim = bw.victim;
  rec.distinct_slash16 = bw.distinct_slash16;
  rec.protocol = bw.protocol;
  rec.first_port = bw.first_port;
  rec.unique_ports = bw.unique_ports;
  rec.max_ppm = bw.peak_ppm;
  rec.packets = bw.packets;
  return rec;
}

bool record_less(const RSDoSRecord& a, const RSDoSRecord& b) {
  if (a.victim != b.victim) return a.victim < b.victim;
  if (a.window != b.window) return a.window < b.window;
  const auto tail = [](const RSDoSRecord& r) {
    return std::make_tuple(r.distinct_slash16,
                           static_cast<std::uint8_t>(r.protocol), r.first_port,
                           r.unique_ports, r.packets, r.max_ppm);
  };
  return tail(a) < tail(b);
}

std::vector<RSDoSEvent> segment_events(std::vector<RSDoSRecord> records,
                                       const InferenceParams& params) {
  std::sort(records.begin(), records.end(), record_less);
  std::vector<RSDoSEvent> events;
  for (std::size_t i = 0; i < records.size();) {
    const RSDoSRecord& first = records[i];
    RSDoSEvent ev;
    ev.victim = first.victim;
    ev.start_window = ev.end_window = first.window;
    ev.max_ppm = first.max_ppm;
    ev.total_packets = first.packets;
    ev.max_slash16 = first.distinct_slash16;
    ev.protocol = first.protocol;
    ev.first_port = first.first_port;
    ev.max_unique_ports = first.unique_ports;
    std::size_t j = i + 1;
    while (j < records.size() && records[j].victim == ev.victim &&
           records[j].window - ev.end_window <=
               static_cast<netsim::WindowIndex>(params.max_gap_windows) + 1) {
      ev.end_window = records[j].window;
      ev.max_ppm = std::max(ev.max_ppm, records[j].max_ppm);
      ev.total_packets += records[j].packets;
      ev.max_slash16 = std::max(ev.max_slash16, records[j].distinct_slash16);
      ev.max_unique_ports =
          std::max(ev.max_unique_ports, records[j].unique_ports);
      ++j;
    }
    events.push_back(ev);
    i = j;
  }
  return events;
}

void EventStitcher::add(const RSDoSRecord& record) {
  ++records_added_;
  const netsim::WindowIndex reach =
      static_cast<netsim::WindowIndex>(params_.max_gap_windows) + 1;
  std::vector<Run>& runs = victims_[record.victim.value()];

  Run single;
  single.head = record;
  single.start = single.end = record.window;
  single.max_ppm = record.max_ppm;
  single.total_packets = record.packets;
  single.max_slash16 = record.distinct_slash16;
  single.max_unique_ports = record.unique_ports;

  // Insert after the last run whose start <= record.window, then merge
  // with the neighbours the new window now bridges. Runs are separated by
  // gaps > reach, so at most one merge per side can fire: merging left
  // extends end to at most max(left.end, window), and the run past the
  // right neighbour stays > reach away from the right neighbour's end.
  const auto pos = std::upper_bound(
      runs.begin(), runs.end(), record.window,
      [](netsim::WindowIndex w, const Run& r) { return w < r.start; });
  std::size_t i = static_cast<std::size_t>(pos - runs.begin());
  runs.insert(pos, single);

  const auto merge_into = [&](std::size_t left) {
    Run& a = runs[left];
    const Run& b = runs[left + 1];
    if (record_less(b.head, a.head)) a.head = b.head;
    a.start = std::min(a.start, b.start);
    a.end = std::max(a.end, b.end);
    a.max_ppm = std::max(a.max_ppm, b.max_ppm);
    a.total_packets += b.total_packets;
    a.max_slash16 = std::max(a.max_slash16, b.max_slash16);
    a.max_unique_ports = std::max(a.max_unique_ports, b.max_unique_ports);
    runs.erase(runs.begin() + static_cast<std::ptrdiff_t>(left) + 1);
  };
  if (i > 0 && runs[i].start - runs[i - 1].end <= reach) {
    merge_into(--i);
  }
  if (i + 1 < runs.size() && runs[i + 1].start - runs[i].end <= reach) {
    merge_into(i);
  }
}

std::vector<RSDoSEvent> EventStitcher::finish() const {
  std::vector<std::uint32_t> victims;
  victims.reserve(victims_.size());
  for (const auto& [victim, runs] : victims_) victims.push_back(victim);
  std::sort(victims.begin(), victims.end());

  std::vector<RSDoSEvent> events;
  for (const std::uint32_t victim : victims) {
    for (const Run& run : victims_.at(victim)) {
      RSDoSEvent ev;
      ev.victim = netsim::IPv4Addr(victim);
      ev.start_window = run.start;
      ev.end_window = run.end;
      ev.max_ppm = run.max_ppm;
      ev.total_packets = run.total_packets;
      ev.max_slash16 = run.max_slash16;
      ev.protocol = run.head.protocol;
      ev.first_port = run.head.first_port;
      ev.max_unique_ports = run.max_unique_ports;
      events.push_back(ev);
    }
  }
  return events;
}

std::vector<DayEventBatch> group_events_by_day(
    const std::vector<RSDoSEvent>& events) {
  std::vector<std::pair<netsim::DayIndex, std::uint32_t>> keyed;
  keyed.reserve(events.size());
  for (std::uint32_t i = 0; i < events.size(); ++i) {
    keyed.emplace_back((events[i].end_time() - 1).day(), i);
  }
  // Pairs sort by (day, index): within a day the canonical event order is
  // preserved without needing a stable sort.
  std::sort(keyed.begin(), keyed.end());

  std::vector<DayEventBatch> batches;
  for (const auto& [day, idx] : keyed) {
    if (batches.empty() || batches.back().day != day) {
      batches.push_back(DayEventBatch{day, {}});
    }
    batches.back().event_indices.push_back(idx);
  }
  return batches;
}

}  // namespace ddos::telescope
