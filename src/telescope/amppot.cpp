#include "telescope/amppot.h"

#include <cmath>
#include <stdexcept>

namespace ddos::telescope {

AmpPotFleet::AmpPotFleet(AmpPotParams params) : params_(params) {
  if (params_.honeypots == 0)
    throw std::invalid_argument("AmpPotFleet: no honeypots");
  if (params_.reflector_population < params_.honeypots)
    throw std::invalid_argument(
        "AmpPotFleet: fleet larger than reflector population");
}

double AmpPotFleet::detection_probability(
    std::uint32_t reflectors_used) const {
  const double miss_one = 1.0 - static_cast<double>(params_.honeypots) /
                                    params_.reflector_population;
  return 1.0 - std::pow(miss_one, static_cast<double>(reflectors_used));
}

std::optional<AmpPotObservation> AmpPotFleet::observe(
    const attack::AttackSpec& attack, netsim::Rng& rng) const {
  if (attack.spoof != attack::SpoofType::Reflected) return std::nullopt;

  // Reflector count per attack: geometric-like spread around the mean.
  const double mean = static_cast<double>(params_.mean_reflectors_used);
  const auto reflectors_used = static_cast<std::uint32_t>(
      std::max(1.0, rng.exponential(1.0 / mean)));

  // Expected honeypots drawn into the attack (hypergeometric ~ binomial
  // at these scales).
  const double expected_hits =
      static_cast<double>(params_.honeypots) * reflectors_used /
      params_.reflector_population;
  const std::uint64_t hits = rng.poisson(expected_hits);
  if (hits == 0) return std::nullopt;

  AmpPotObservation obs;
  obs.first_window = attack.first_window();
  obs.last_window = attack.last_window();
  obs.victim = attack.target;
  obs.honeypots_hit = static_cast<std::uint32_t>(hits);
  obs.protocol = attack.protocol;
  obs.port = attack.first_port;
  // Each reflector contributes ~equally to the victim-side rate; the
  // fleet extrapolates from its members' request rates. The attacker's
  // request rate is the victim rate divided by the amplification factor.
  const double per_reflector_request_pps =
      attack.peak_pps / params_.amplification_factor / reflectors_used;
  obs.estimated_pps = per_reflector_request_pps * reflectors_used *
                      params_.amplification_factor *
                      rng.uniform(0.8, 1.2);  // estimation noise
  return obs;
}

std::vector<AmpPotObservation> AmpPotFleet::observe_all(
    const std::vector<attack::AttackSpec>& attacks) const {
  std::vector<AmpPotObservation> out;
  for (const auto& a : attacks) {
    // Per-attack stream keyed by (fleet seed, attack identity).
    netsim::Rng rng(netsim::mix64(params_.seed ^
                                  a.id * 0x9E3779B97F4A7C15ull ^
                                  a.target.value()));
    if (auto obs = observe(a, rng)) out.push_back(*obs);
  }
  return out;
}

}  // namespace ddos::telescope
