#include "telescope/feed.h"

#include <algorithm>
#include <cstddef>
#include <istream>
#include <iterator>
#include <string>
#include <utility>

#include "exec/parallel.h"
#include "obs/obs.h"

namespace ddos::telescope {

RSDoSFeed::RSDoSFeed(InferenceParams inference,
                     attack::BackscatterModelParams model)
    : inference_(inference), model_(model) {}

void RSDoSFeed::ingest(const attack::AttackSchedule& schedule,
                       const Darknet& darknet, std::uint64_t seed) {
  ingest_stream(schedule, darknet, seed,
                [this](std::vector<RSDoSRecord>&& records) {
                  records_.insert(records_.end(),
                                  std::make_move_iterator(records.begin()),
                                  std::make_move_iterator(records.end()));
                });
}

std::size_t RSDoSFeed::ingest_stream(
    const attack::AttackSchedule& schedule, const Darknet& darknet,
    std::uint64_t seed,
    const std::function<void(std::vector<RSDoSRecord>&&)>& sink) {
  obs::ScopedSpan span(obs::installed_tracer(), "feed.ingest");
  const double fraction = darknet.ipv4_fraction();
  const std::uint32_t subnets = darknet.slash16_count();
  const auto& attacks = schedule.attacks();
  // Parent stream for per-attack splits: each attack's RNG is a pure
  // function of (seed, attack id), so shards can process attacks in any
  // order and re-ingesting reproduces the same feed.
  const netsim::Rng base(netsim::mix64(seed));

  struct ShardOut {
    std::vector<RSDoSRecord> records;
    std::uint64_t windows_observed = 0;
  };
  struct Totals {
    std::uint64_t windows_observed = 0;
    std::uint64_t records = 0;
  };
  // The schedule is processed in bounded chunks of attacks, one parallel
  // region per chunk, so at most one chunk's shard outputs are ever
  // resident — that region is the streaming pipeline's peak-memory term.
  // Order is unaffected: shards (and chunks) are contiguous ascending
  // attack ranges, each attack's records are emitted in window order, and
  // the ordered reduction hands shards to the sink in shard-index order —
  // so the concatenated stream is identical for any chunking, any shard
  // decomposition and any thread count, and matches what ingest() appends
  // to records().
  constexpr std::size_t kAttacksPerRegion = 4096;
  Totals totals;
  for (std::size_t chunk = 0; chunk < attacks.size();
       chunk += kAttacksPerRegion) {
    const std::size_t chunk_size =
        std::min(kAttacksPerRegion, attacks.size() - chunk);
    exec::RegionOptions opts;
    opts.label = "feed.ingest";
    totals = exec::parallel_map_reduce(
        chunk_size, opts, totals,
        [&](const exec::ShardRange& range) {
          ShardOut out;
          for (std::size_t i = chunk + range.begin; i < chunk + range.end;
               ++i) {
            const auto& atk = attacks[i];
            netsim::Rng rng = base.split(atk.id);
            for (netsim::WindowIndex w = atk.first_window();
                 w <= atk.last_window(); ++w) {
              ++out.windows_observed;
              const auto bw = attack::observe_backscatter(
                  atk, w, fraction, subnets, model_, rng);
              if (passes_thresholds(bw, inference_)) {
                out.records.push_back(to_record(bw));
              }
            }
          }
          return out;
        },
        [&sink](Totals& total, ShardOut&& shard) {
          total.windows_observed += shard.windows_observed;
          total.records += shard.records.size();
          sink(std::move(shard.records));
        });
  }
  span.set_items(totals.windows_observed);
  if (obs::Observer* o = obs::Observer::installed()) {
    o->pipeline.feed_windows_observed.inc(totals.windows_observed);
    o->pipeline.feed_records.inc(totals.records);
  }
  return totals.records;
}

std::vector<RSDoSEvent> RSDoSFeed::events() const {
  obs::ScopedSpan span(obs::installed_tracer(), "feed.segment_events");
  span.set_items(records_.size());
  return segment_events(records_, inference_);
}

void RSDoSFeed::write_csv(std::ostream& out) const {
  out << RSDoSRecord::csv_header() << '\n';
  for (const auto& rec : records_) out << rec.to_csv_row() << '\n';
}

std::size_t RSDoSFeed::read_csv(std::istream& in) {
  std::size_t count = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (line == RSDoSRecord::csv_header() || line.empty()) continue;
    if (const auto rec = RSDoSRecord::from_csv_row(line)) {
      records_.push_back(*rec);
      ++count;
    }
  }
  return count;
}

}  // namespace ddos::telescope
