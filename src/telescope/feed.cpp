#include "telescope/feed.h"

#include <istream>
#include <string>

#include "obs/obs.h"

namespace ddos::telescope {

RSDoSFeed::RSDoSFeed(InferenceParams inference,
                     attack::BackscatterModelParams model)
    : inference_(inference), model_(model) {}

void RSDoSFeed::ingest(const attack::AttackSchedule& schedule,
                       const Darknet& darknet, std::uint64_t seed) {
  obs::ScopedSpan span(obs::installed_tracer(), "feed.ingest");
  const double fraction = darknet.ipv4_fraction();
  const std::uint32_t subnets = darknet.slash16_count();
  const std::size_t records_before = records_.size();
  std::uint64_t windows_observed = 0;
  for (const auto& atk : schedule.attacks()) {
    // Per-attack RNG stream keyed by (seed, attack id): ingest order does
    // not affect results, and re-ingesting reproduces the same feed.
    netsim::Rng rng(netsim::mix64(seed ^ atk.id * 0x9E3779B97F4A7C15ull));
    for (netsim::WindowIndex w = atk.first_window(); w <= atk.last_window();
         ++w) {
      ++windows_observed;
      const auto bw = attack::observe_backscatter(atk, w, fraction, subnets,
                                                  model_, rng);
      if (passes_thresholds(bw, inference_)) {
        records_.push_back(to_record(bw));
      }
    }
  }
  span.set_items(windows_observed);
  if (obs::Observer* o = obs::Observer::installed()) {
    o->pipeline.feed_windows_observed.inc(windows_observed);
    o->pipeline.feed_records.inc(records_.size() - records_before);
  }
}

std::vector<RSDoSEvent> RSDoSFeed::events() const {
  obs::ScopedSpan span(obs::installed_tracer(), "feed.segment_events");
  span.set_items(records_.size());
  return segment_events(records_, inference_);
}

void RSDoSFeed::write_csv(std::ostream& out) const {
  out << RSDoSRecord::csv_header() << '\n';
  for (const auto& rec : records_) out << rec.to_csv_row() << '\n';
}

std::size_t RSDoSFeed::read_csv(std::istream& in) {
  std::size_t count = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (line == RSDoSRecord::csv_header() || line.empty()) continue;
    if (const auto rec = RSDoSRecord::from_csv_row(line)) {
      records_.push_back(*rec);
      ++count;
    }
  }
  return count;
}

}  // namespace ddos::telescope
