#include "telescope/feed.h"

#include <istream>
#include <iterator>
#include <string>
#include <utility>

#include "exec/parallel.h"
#include "obs/obs.h"

namespace ddos::telescope {

RSDoSFeed::RSDoSFeed(InferenceParams inference,
                     attack::BackscatterModelParams model)
    : inference_(inference), model_(model) {}

void RSDoSFeed::ingest(const attack::AttackSchedule& schedule,
                       const Darknet& darknet, std::uint64_t seed) {
  obs::ScopedSpan span(obs::installed_tracer(), "feed.ingest");
  const double fraction = darknet.ipv4_fraction();
  const std::uint32_t subnets = darknet.slash16_count();
  const std::size_t records_before = records_.size();
  const auto& attacks = schedule.attacks();
  // Parent stream for per-attack splits: each attack's RNG is a pure
  // function of (seed, attack id), so shards can process attacks in any
  // order and re-ingesting reproduces the same feed.
  const netsim::Rng base(netsim::mix64(seed));

  struct ShardOut {
    std::vector<RSDoSRecord> records;
    std::uint64_t windows_observed = 0;
  };
  exec::RegionOptions opts;
  opts.label = "feed.ingest";
  const std::uint64_t windows_observed = exec::parallel_map_reduce(
      attacks.size(), opts, std::uint64_t{0},
      [&](const exec::ShardRange& range) {
        ShardOut out;
        for (std::size_t i = range.begin; i < range.end; ++i) {
          const auto& atk = attacks[i];
          netsim::Rng rng = base.split(atk.id);
          for (netsim::WindowIndex w = atk.first_window();
               w <= atk.last_window(); ++w) {
            ++out.windows_observed;
            const auto bw = attack::observe_backscatter(atk, w, fraction,
                                                        subnets, model_, rng);
            if (passes_thresholds(bw, inference_)) {
              out.records.push_back(to_record(bw));
            }
          }
        }
        return out;
      },
      [this](std::uint64_t& total, ShardOut&& shard) {
        records_.insert(records_.end(),
                        std::make_move_iterator(shard.records.begin()),
                        std::make_move_iterator(shard.records.end()));
        total += shard.windows_observed;
      });
  span.set_items(windows_observed);
  if (obs::Observer* o = obs::Observer::installed()) {
    o->pipeline.feed_windows_observed.inc(windows_observed);
    o->pipeline.feed_records.inc(records_.size() - records_before);
  }
}

std::vector<RSDoSEvent> RSDoSFeed::events() const {
  obs::ScopedSpan span(obs::installed_tracer(), "feed.segment_events");
  span.set_items(records_.size());
  return segment_events(records_, inference_);
}

void RSDoSFeed::write_csv(std::ostream& out) const {
  out << RSDoSRecord::csv_header() << '\n';
  for (const auto& rec : records_) out << rec.to_csv_row() << '\n';
}

std::size_t RSDoSFeed::read_csv(std::istream& in) {
  std::size_t count = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (line == RSDoSRecord::csv_header() || line.empty()) continue;
    if (const auto rec = RSDoSRecord::from_csv_row(line)) {
      records_.push_back(*rec);
      ++count;
    }
  }
  return count;
}

}  // namespace ddos::telescope
