// RSDoS inference (Moore et al. 2006; CAIDA's curated feed, §3.1).
//
// Input: per-victim, per-5-minute-window backscatter aggregates captured by
// the darknet. Output: RSDoSRecord rows with the exact fields the paper
// lists — timestamp, victim, /16 spread, protocol, first port, number of
// unique ports, peak observed packet rate — after noise thresholds that
// discard scanning artefacts and misconfigurations.
//
// Records for the same victim separated by at most `max_gap_windows` empty
// windows are then stitched into RSDoSEvents, the unit of the paper's
// duration analysis (§6.5).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "attack/backscatter.h"
#include "netsim/ipv4.h"
#include "netsim/simtime.h"

namespace ddos::telescope {

/// One row of the curated attack feed (5-minute tumbling window).
struct RSDoSRecord {
  netsim::WindowIndex window = 0;
  netsim::IPv4Addr victim;
  std::uint32_t distinct_slash16 = 0;
  attack::Protocol protocol = attack::Protocol::TCP;
  std::uint16_t first_port = 0;
  std::uint16_t unique_ports = 1;
  double max_ppm = 0.0;          // peak packet rate at the telescope, pkt/min
  std::uint64_t packets = 0;     // backscatter packets in the window

  std::string to_csv_row() const;
  static std::string csv_header();
  /// Parse one to_csv_row() line back; nullopt on malformed input.
  static std::optional<RSDoSRecord> from_csv_row(std::string_view line);

  /// Field-exact equality (store round-trip assertions).
  friend bool operator==(const RSDoSRecord&, const RSDoSRecord&) = default;
};

/// Classification thresholds, after Moore et al.: a victim must hit enough
/// telescope addresses (wide /16 spread ⇒ uniform spoofing) at a minimum
/// rate before a window counts as attack evidence.
struct InferenceParams {
  std::uint64_t min_packets_per_window = 25;
  std::uint32_t min_distinct_slash16 = 25;
  double min_ppm = 5.0;
  /// Windows with no evidence tolerated inside one attack event.
  int max_gap_windows = 2;
};

/// Window-level classification.
bool passes_thresholds(const attack::BackscatterWindow& bw,
                       const InferenceParams& params);

/// Convert an accepted backscatter window into a feed record.
RSDoSRecord to_record(const attack::BackscatterWindow& bw);

/// A stitched attack event: consecutive feed records for one victim.
struct RSDoSEvent {
  netsim::IPv4Addr victim;
  netsim::WindowIndex start_window = 0;
  netsim::WindowIndex end_window = 0;  // inclusive
  double max_ppm = 0.0;
  std::uint64_t total_packets = 0;
  std::uint32_t max_slash16 = 0;
  attack::Protocol protocol = attack::Protocol::TCP;
  std::uint16_t first_port = 0;
  std::uint16_t max_unique_ports = 1;

  std::int64_t duration_s() const {
    return (end_window - start_window + 1) * netsim::kSecondsPerWindow;
  }
  netsim::SimTime start_time() const {
    return netsim::window_start(start_window);
  }
  netsim::SimTime end_time() const {
    return netsim::window_start(end_window + 1);
  }

  /// Field-exact equality (store round-trip assertions).
  friend bool operator==(const RSDoSEvent&, const RSDoSEvent&) = default;
};

/// Stitch per-window records (any order) into events per victim.
std::vector<RSDoSEvent> segment_events(std::vector<RSDoSRecord> records,
                                       const InferenceParams& params);

}  // namespace ddos::telescope
