// RSDoS inference (Moore et al. 2006; CAIDA's curated feed, §3.1).
//
// Input: per-victim, per-5-minute-window backscatter aggregates captured by
// the darknet. Output: RSDoSRecord rows with the exact fields the paper
// lists — timestamp, victim, /16 spread, protocol, first port, number of
// unique ports, peak observed packet rate — after noise thresholds that
// discard scanning artefacts and misconfigurations.
//
// Records for the same victim separated by at most `max_gap_windows` empty
// windows are then stitched into RSDoSEvents, the unit of the paper's
// duration analysis (§6.5).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "attack/backscatter.h"
#include "netsim/ipv4.h"
#include "netsim/simtime.h"

namespace ddos::telescope {

/// One row of the curated attack feed (5-minute tumbling window).
struct RSDoSRecord {
  netsim::WindowIndex window = 0;
  netsim::IPv4Addr victim;
  std::uint32_t distinct_slash16 = 0;
  attack::Protocol protocol = attack::Protocol::TCP;
  std::uint16_t first_port = 0;
  std::uint16_t unique_ports = 1;
  double max_ppm = 0.0;          // peak packet rate at the telescope, pkt/min
  std::uint64_t packets = 0;     // backscatter packets in the window

  std::string to_csv_row() const;
  static std::string csv_header();
  /// Parse one to_csv_row() line back; nullopt on malformed input.
  static std::optional<RSDoSRecord> from_csv_row(std::string_view line);

  /// Field-exact equality (store round-trip assertions).
  friend bool operator==(const RSDoSRecord&, const RSDoSRecord&) = default;
};

/// Classification thresholds, after Moore et al.: a victim must hit enough
/// telescope addresses (wide /16 spread ⇒ uniform spoofing) at a minimum
/// rate before a window counts as attack evidence.
struct InferenceParams {
  std::uint64_t min_packets_per_window = 25;
  std::uint32_t min_distinct_slash16 = 25;
  double min_ppm = 5.0;
  /// Windows with no evidence tolerated inside one attack event.
  int max_gap_windows = 2;
};

/// Window-level classification.
bool passes_thresholds(const attack::BackscatterWindow& bw,
                       const InferenceParams& params);

/// Convert an accepted backscatter window into a feed record.
RSDoSRecord to_record(const attack::BackscatterWindow& bw);

/// A stitched attack event: consecutive feed records for one victim.
struct RSDoSEvent {
  netsim::IPv4Addr victim;
  netsim::WindowIndex start_window = 0;
  netsim::WindowIndex end_window = 0;  // inclusive
  double max_ppm = 0.0;
  std::uint64_t total_packets = 0;
  std::uint32_t max_slash16 = 0;
  attack::Protocol protocol = attack::Protocol::TCP;
  std::uint16_t first_port = 0;
  std::uint16_t max_unique_ports = 1;

  std::int64_t duration_s() const {
    return (end_window - start_window + 1) * netsim::kSecondsPerWindow;
  }
  netsim::SimTime start_time() const {
    return netsim::window_start(start_window);
  }
  netsim::SimTime end_time() const {
    return netsim::window_start(end_window + 1);
  }

  /// Field-exact equality (store round-trip assertions).
  friend bool operator==(const RSDoSEvent&, const RSDoSEvent&) = default;
};

/// Total order on feed records: (victim, window) first — the canonical
/// event order — then every remaining field as a tie-break. Two attacks
/// can hit one victim in the same window (victim reuse), and the stitched
/// event's protocol/first_port come from the run's first record, so the
/// sort must not leave that choice to the sort algorithm: under a total
/// order, batch segmentation and the incremental stitcher pick the same
/// head record no matter how the input was produced.
bool record_less(const RSDoSRecord& a, const RSDoSRecord& b);

/// Stitch per-window records (any order) into events per victim.
std::vector<RSDoSEvent> segment_events(std::vector<RSDoSRecord> records,
                                       const InferenceParams& params);

/// Incremental event stitcher: accepts records one at a time in any order
/// and, on finish(), yields exactly segment_events' output — without ever
/// holding the record vector. Per victim it maintains disjoint runs
/// (adjacent runs separated by more than max_gap_windows+1 windows); a new
/// record inserts as a singleton run and merges with at most one neighbour
/// on each side. Each run keeps only the record_less-minimal record (the
/// head, which supplies protocol/first_port) plus order-independent folds
/// (max_ppm, total_packets, max_slash16, max_unique_ports), so memory is
/// O(events), not O(records). This is what lets the streaming driver
/// retire feed records shard by shard.
class EventStitcher {
 public:
  explicit EventStitcher(const InferenceParams& params) : params_(params) {}

  void add(const RSDoSRecord& record);

  /// Events in canonical (victim, start_window) order — bit-identical to
  /// segment_events over the same record multiset.
  std::vector<RSDoSEvent> finish() const;

  std::uint64_t records_added() const { return records_added_; }

 private:
  struct Run {
    RSDoSRecord head;  // record_less-min of the run: protocol/first_port
    netsim::WindowIndex start = 0;
    netsim::WindowIndex end = 0;
    double max_ppm = 0.0;
    std::uint64_t total_packets = 0;
    std::uint32_t max_slash16 = 0;
    std::uint16_t max_unique_ports = 1;
  };

  InferenceParams params_;
  std::uint64_t records_added_ = 0;
  // Keyed by victim address value; run vectors stay sorted by start with
  // gaps > max_gap_windows+1 between neighbours.
  std::unordered_map<std::uint32_t, std::vector<Run>> victims_;
};

/// One day-epoch's worth of stitched events, identified by index into the
/// canonical (victim, start_window)-ordered event vector rather than by
/// copies — downstream consumers (the streaming join) must preserve the
/// canonical order even though they process day by day.
struct DayEventBatch {
  /// Last attacked day, (end_time()-1).day(): the epoch after which every
  /// measurement-store read of the event's join is final (the join reads
  /// day first_day-1 baselines and the attack windows, all <= this day).
  netsim::DayIndex day = 0;
  std::vector<std::uint32_t> event_indices;  // ascending, into the vector
};

/// Bucket stitched events by last attacked day, batches in ascending day
/// order, indices within a batch in canonical event order.
std::vector<DayEventBatch> group_events_by_day(
    const std::vector<RSDoSEvent>& events);

}  // namespace ddos::telescope
