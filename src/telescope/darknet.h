// The network telescope: globally routed but unused address space whose
// inbound traffic is pure Internet Background Radiation. The UCSD-NT
// announces a /9 and a /10 (§3.1) — approximately 1/341 of IPv4 — which is
// the sampling fraction every inference in the paper extrapolates through
// (footnote 2: pps = ppm x 341 / 60).
#pragma once

#include <cstdint>
#include <vector>

#include "netsim/ipv4.h"

namespace ddos::telescope {

class Darknet {
 public:
  /// Custom telescope from explicit prefixes (must be non-overlapping).
  explicit Darknet(std::vector<netsim::Prefix> prefixes);

  /// The UCSD-NT layout: a /9 plus a /10.
  static Darknet ucsd_like();

  const std::vector<netsim::Prefix>& prefixes() const { return prefixes_; }

  /// Addresses covered.
  std::uint64_t address_count() const;

  /// Fraction of the 2^32 IPv4 space covered (~1/341 for UCSD-NT).
  double ipv4_fraction() const;

  /// Inverse of the fraction — the extrapolation multiplier (~341).
  double extrapolation_factor() const { return 1.0 / ipv4_fraction(); }

  /// Number of /16-equivalent subnets covered (the RSDoS "spread" unit).
  std::uint32_t slash16_count() const;

  bool contains(netsim::IPv4Addr addr) const;

 private:
  std::vector<netsim::Prefix> prefixes_;
};

}  // namespace ddos::telescope
