#include "telescope/noise.h"

#include "telescope/rsdos.h"

namespace ddos::telescope {

namespace {

netsim::IPv4Addr random_source(netsim::Rng& rng) {
  // Noise sources live all over the routed space.
  return netsim::IPv4Addr(static_cast<std::uint32_t>(rng.next_u64()));
}

}  // namespace

std::vector<attack::BackscatterWindow> generate_ibr_noise(
    const IbrNoiseParams& params, netsim::WindowIndex first_window,
    netsim::WindowIndex last_window, const Darknet& darknet) {
  netsim::Rng rng(params.seed);
  const std::uint32_t subnets = darknet.slash16_count();
  std::vector<attack::BackscatterWindow> out;

  for (netsim::WindowIndex w = first_window; w <= last_window; ++w) {
    // Misconfigurations: lots of packets, almost no spread.
    const std::uint64_t misconfigs =
        rng.poisson(params.misconfig_sources_per_window);
    for (std::uint64_t i = 0; i < misconfigs; ++i) {
      attack::BackscatterWindow bw;
      bw.window = w;
      bw.victim = random_source(rng);
      bw.packets = 50 + rng.uniform_u64(5000);
      bw.distinct_slash16 =
          static_cast<std::uint32_t>(1 + rng.uniform_u64(3));
      bw.peak_ppm = static_cast<double>(bw.packets) / 5.0;
      bw.protocol = attack::Protocol::TCP;
      bw.first_port = static_cast<std::uint16_t>(rng.uniform_u64(65535));
      out.push_back(bw);
    }
    // Residual trickles: wide-ish spread but tiny volume.
    const std::uint64_t residuals =
        rng.poisson(params.residual_sources_per_window);
    for (std::uint64_t i = 0; i < residuals; ++i) {
      attack::BackscatterWindow bw;
      bw.window = w;
      bw.victim = random_source(rng);
      bw.packets = 1 + rng.uniform_u64(20);
      bw.distinct_slash16 = static_cast<std::uint32_t>(
          1 + rng.uniform_u64(std::min<std::uint64_t>(bw.packets, subnets)));
      bw.peak_ppm = static_cast<double>(bw.packets) / 5.0;
      bw.protocol = rng.chance(0.5) ? attack::Protocol::TCP
                                    : attack::Protocol::UDP;
      bw.first_port = static_cast<std::uint16_t>(rng.uniform_u64(65535));
      out.push_back(bw);
    }
    // Flickers: the rare wide blip that passes thresholds.
    if (rng.chance(params.flicker_sources_per_window)) {
      attack::BackscatterWindow bw;
      bw.window = w;
      bw.victim = random_source(rng);
      bw.packets = 100 + rng.uniform_u64(400);
      bw.distinct_slash16 = static_cast<std::uint32_t>(
          30 + rng.uniform_u64(subnets - 30));
      bw.peak_ppm = static_cast<double>(bw.packets) / 4.0;
      bw.protocol = attack::Protocol::TCP;
      bw.first_port = 80;
      out.push_back(bw);
    }
  }
  return out;
}

double rejection_rate(const std::vector<attack::BackscatterWindow>& windows,
                      const InferenceParams& inference) {
  if (windows.empty()) return 0.0;
  std::size_t rejected = 0;
  for (const auto& bw : windows) {
    if (!passes_thresholds(bw, inference)) ++rejected;
  }
  return static_cast<double>(rejected) / windows.size();
}

}  // namespace ddos::telescope
