// Internet Background Radiation noise (§3.1). The telescope's raw capture
// is mostly *not* attack backscatter: scanners sweeping the darknet,
// misconfigured hosts retransmitting to a handful of addresses, and
// low-rate response trickles. Moore et al.'s thresholds exist precisely to
// reject these — so a faithful inference pipeline has to be exercised
// against them, not only against clean attack signals.
//
// The generator produces response-type aggregates (the stage after
// request/response classification, which already discarded scan SYNs) in
// three noise flavours:
//   * misconfiguration: bursts of many packets to very few /16s (fails the
//     spread threshold);
//   * residual backscatter: tiny responses from sub-threshold events
//     (fails the packet/rate thresholds);
//   * heavy-tail flickers: occasional wide-spread but single-window blips
//     that pass thresholds and become one-window "attacks" — the
//     false-positive floor real feeds carry.
#pragma once

#include <cstdint>
#include <vector>

#include "attack/backscatter.h"
#include "netsim/rng.h"
#include "netsim/simtime.h"
#include "telescope/darknet.h"
#include "telescope/rsdos.h"

namespace ddos::telescope {

struct IbrNoiseParams {
  /// Noise sources emitting response traffic per 5-minute window.
  double misconfig_sources_per_window = 3.0;
  double residual_sources_per_window = 40.0;
  /// Rare wide blips that can pass inference (per window).
  double flicker_sources_per_window = 0.02;
  std::uint64_t seed = 314;
};

/// Generate per-window noise aggregates across [first_window, last_window].
std::vector<attack::BackscatterWindow> generate_ibr_noise(
    const IbrNoiseParams& params, netsim::WindowIndex first_window,
    netsim::WindowIndex last_window, const Darknet& darknet);

/// Fraction of `windows` rejected by the inference thresholds.
double rejection_rate(const std::vector<attack::BackscatterWindow>& windows,
                      const InferenceParams& inference);

}  // namespace ddos::telescope
