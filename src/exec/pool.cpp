#include "exec/pool.h"

#include <chrono>
#include <cstdlib>

#include "obs/trace.h"

namespace ddos::exec {

namespace {

// Set for the whole duration a thread spends inside a region body, on the
// caller as well as on workers: nested parallel constructs check it and
// degrade to inline execution.
thread_local bool t_inside_region = false;

unsigned resolve_threads(unsigned threads) {
  if (threads > 0) return threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

unsigned env_default_threads() {
  if (const char* env = std::getenv("DDOSREPRO_THREADS")) {
    const unsigned long v = std::strtoul(env, nullptr, 10);
    if (v > 0) return static_cast<unsigned>(v);
  }
  return resolve_threads(0);
}

}  // namespace

WorkerPool::WorkerPool(unsigned threads) : threads_(resolve_threads(threads)) {
  cells_.reserve(threads_);
  for (unsigned i = 0; i < threads_; ++i) {
    cells_.push_back(std::make_unique<StatsCell>());
  }
}

WorkerPool::~WorkerPool() { stop_workers(); }

unsigned WorkerPool::thread_count() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return threads_;
}

void WorkerPool::set_thread_count(unsigned threads) {
  stop_workers();
  const std::lock_guard<std::mutex> lock(mu_);
  threads_ = resolve_threads(threads);
  while (cells_.size() < threads_) {
    cells_.push_back(std::make_unique<StatsCell>());
  }
}

bool WorkerPool::inside_region() { return t_inside_region; }

std::uint64_t WorkerPool::now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void WorkerPool::start_workers_locked() {
  // Spans opened by worker shards sit below the run-level and stage-level
  // spans of the calling thread; pinning the depth floor keeps them out of
  // the run report's depth<=1 stage table while Chrome traces still show
  // one lane per worker.
  while (workers_.size() + 1 < threads_) {
    const unsigned participant = static_cast<unsigned>(workers_.size()) + 1;
    workers_.emplace_back([this, participant] {
      obs::set_thread_span_depth(2);
      worker_main(participant);
    });
  }
}

void WorkerPool::stop_workers() {
  std::vector<std::thread> joinable;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (workers_.empty()) return;
    stop_ = true;
    work_cv_.notify_all();
    joinable.swap(workers_);
  }
  for (auto& w : joinable) w.join();
  const std::lock_guard<std::mutex> lock(mu_);
  stop_ = false;
}

void WorkerPool::worker_main(unsigned participant) {
  std::uint64_t seen_generation = 0;
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [&] {
      return stop_ || job_generation_ != seen_generation;
    });
    if (stop_) return;
    seen_generation = job_generation_;
    const std::function<void(unsigned)>* job = job_;
    const std::uint64_t publish_ns = job_publish_ns_;
    lock.unlock();

    cells_[participant]->queue_wait_ns.fetch_add(
        now_ns() - publish_ns, std::memory_order_relaxed);
    t_inside_region = true;
    (*job)(participant);
    t_inside_region = false;

    lock.lock();
    if (--active_workers_ == 0) done_cv_.notify_all();
  }
}

void WorkerPool::run_on_all(const std::function<void(unsigned)>& fn) {
  unsigned participants = 1;
  {
    std::unique_lock<std::mutex> lock(mu_);
    participants = threads_;
    if (participants > 1) {
      start_workers_locked();
      job_ = &fn;
      ++job_generation_;
      job_publish_ns_ = now_ns();
      active_workers_ = static_cast<unsigned>(workers_.size());
      work_cv_.notify_all();
    }
  }

  t_inside_region = true;
  fn(0);
  t_inside_region = false;

  if (participants > 1) {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] { return active_workers_ == 0; });
    job_ = nullptr;
  }
}

std::vector<WorkerStats> WorkerPool::stats() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<WorkerStats> out;
  out.reserve(threads_);
  for (unsigned i = 0; i < threads_ && i < cells_.size(); ++i) {
    WorkerStats s;
    s.tasks = cells_[i]->tasks.load(std::memory_order_relaxed);
    s.busy_ns = cells_[i]->busy_ns.load(std::memory_order_relaxed);
    s.queue_wait_ns =
        cells_[i]->queue_wait_ns.load(std::memory_order_relaxed);
    out.push_back(s);
  }
  return out;
}

std::uint64_t WorkerPool::progress() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t total = 0;
  for (const auto& cell : cells_) {
    total += cell->tasks.load(std::memory_order_relaxed);
  }
  return total;
}

void WorkerPool::record_shards(unsigned participant, std::uint64_t shards,
                               std::uint64_t busy_ns) {
  if (participant >= cells_.size() || shards == 0) return;
  cells_[participant]->tasks.fetch_add(shards, std::memory_order_relaxed);
  cells_[participant]->busy_ns.fetch_add(busy_ns, std::memory_order_relaxed);
}

WorkerPool& global_pool() {
  static WorkerPool pool(env_default_threads());
  return pool;
}

void set_global_threads(unsigned threads) {
  global_pool().set_thread_count(threads);
}

}  // namespace ddos::exec
