// Stage — a named pipeline-stage thread for the streaming driver. One
// Stage owns one std::thread running one body; the body's exception (if
// any) is captured and rethrown from join() on the wiring thread, so a
// failing stage surfaces as a normal exception in run_longitudinal_streaming
// instead of std::terminate. Bodies are expected to close their output
// Channel on all exits (including unwinds) so downstream stages drain and
// stop rather than deadlock.
#pragma once

#include <exception>
#include <string>
#include <thread>
#include <utility>

#include "obs/trace.h"

namespace ddos::exec {

class Stage {
 public:
  /// Launches `body` on a fresh thread. `trace_depth` pins the stage's
  /// spans to their own lane in the Chrome trace view (the worker pool
  /// uses depth 2; stages sit above the workers at depth 1).
  template <typename Body>
  Stage(std::string name, Body body, std::uint32_t trace_depth = 1)
      : name_(std::move(name)) {
    thread_ = std::thread([this, body = std::move(body), trace_depth] {
      obs::set_thread_span_depth(trace_depth);
      try {
        body();
      } catch (...) {
        error_ = std::current_exception();
      }
    });
  }

  Stage(const Stage&) = delete;
  Stage& operator=(const Stage&) = delete;

  /// Waits for the stage to finish and rethrows its exception, if any.
  void join() {
    if (thread_.joinable()) thread_.join();
    if (error_) {
      std::exception_ptr e = std::exchange(error_, nullptr);
      std::rethrow_exception(e);
    }
  }

  /// Joining destructor; a captured exception is swallowed here (call
  /// join() first when the error matters — the driver always does).
  ~Stage() {
    if (thread_.joinable()) thread_.join();
  }

  const std::string& name() const { return name_; }
  /// Only meaningful after the stage thread has been joined (error_ is
  /// published by the join's happens-before edge, not by an atomic).
  bool failed() const { return error_ != nullptr; }

 private:
  std::string name_;
  std::thread thread_;
  std::exception_ptr error_;
};

}  // namespace ddos::exec
