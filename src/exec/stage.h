// Stage — a named pipeline-stage thread for the streaming driver. One
// Stage owns one std::thread running one body; the body's exception (if
// any) is captured and rethrown from join() on the wiring thread, so a
// failing stage surfaces as a normal exception in run_longitudinal_streaming
// instead of std::terminate. Bodies are expected to close their output
// Channel on all exits (including unwinds) so downstream stages drain and
// stop rather than deadlock.
#pragma once

#include <atomic>
#include <cstdint>
#include <exception>
#include <memory>
#include <string>
#include <thread>
#include <type_traits>
#include <utility>

#include "obs/trace.h"

namespace ddos::exec {

/// Per-stage progress cell a Stage body ticks once per processed item. The
/// stall watchdog polls progress() from other threads; the cell lives in a
/// shared_ptr so a watchdog callable registered on the observer stays
/// valid even if it is read during Stage teardown.
class StageContext {
 public:
  void tick(std::uint64_t n = 1) {
    items_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t progress() const {
    return items_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> items_{0};
};

class Stage {
 public:
  /// Launches `body` on a fresh thread. `trace_depth` pins the stage's
  /// spans to their own lane in the Chrome trace view (the worker pool
  /// uses depth 2; stages sit above the workers at depth 1). Bodies that
  /// accept a StageContext& receive this stage's progress cell and should
  /// tick() it once per item so the stall watchdog can see the stage move.
  template <typename Body>
  Stage(std::string name, Body body, std::uint32_t trace_depth = 1)
      : name_(std::move(name)), context_(std::make_shared<StageContext>()) {
    thread_ = std::thread(
        [this, body = std::move(body), trace_depth, context = context_] {
          obs::set_thread_span_depth(trace_depth);
          try {
            if constexpr (std::is_invocable_v<Body&, StageContext&>) {
              body(*context);
            } else {
              body();
            }
          } catch (...) {
            error_ = std::current_exception();
          }
        });
  }

  Stage(const Stage&) = delete;
  Stage& operator=(const Stage&) = delete;

  /// Waits for the stage to finish and rethrows its exception, if any.
  void join() {
    if (thread_.joinable()) thread_.join();
    if (error_) {
      std::exception_ptr e = std::exchange(error_, nullptr);
      std::rethrow_exception(e);
    }
  }

  /// Joining destructor; a captured exception is swallowed here (call
  /// join() first when the error matters — the driver always does).
  ~Stage() {
    if (thread_.joinable()) thread_.join();
  }

  const std::string& name() const { return name_; }
  /// Only meaningful after the stage thread has been joined (error_ is
  /// published by the join's happens-before edge, not by an atomic).
  bool failed() const { return error_ != nullptr; }

  /// Shared progress cell: safe to read from any thread, and to keep (via
  /// the shared_ptr) beyond the Stage's lifetime.
  const std::shared_ptr<StageContext>& context() const { return context_; }
  /// Items processed so far — the stage's monotonic progress counter.
  std::uint64_t progress() const { return context_->progress(); }

 private:
  std::string name_;
  std::shared_ptr<StageContext> context_;
  std::thread thread_;
  std::exception_ptr error_;
};

}  // namespace ddos::exec
