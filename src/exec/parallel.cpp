#include "exec/parallel.h"

#include <atomic>
#include <chrono>
#include <exception>
#include <mutex>
#include <string>

#include "obs/obs.h"
#include "obs/trace.h"

namespace ddos::exec {

namespace {

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

std::size_t plan_shards(std::size_t n, std::size_t max_shards) {
  if (n == 0) return 0;
  if (max_shards == 0) max_shards = 1;
  return n < max_shards ? n : max_shards;
}

ShardRange shard_bounds(std::size_t n, std::size_t shards, std::size_t index) {
  const std::size_t base = n / shards;
  const std::size_t rem = n % shards;
  ShardRange r;
  r.index = index;
  r.begin = index * base + (index < rem ? index : rem);
  r.end = r.begin + base + (index < rem ? 1 : 0);
  return r;
}

namespace detail {

void run_region(std::size_t n, std::size_t shards, const RegionOptions& opts,
                const std::function<void(const ShardRange&)>& shard_body) {
  if (shards == 0) return;
  WorkerPool& pool = opts.pool ? *opts.pool : global_pool();
  const bool inline_run = pool.thread_count() <= 1 || shards <= 1 ||
                          WorkerPool::inside_region();

  obs::ScopedSpan region(obs::installed_tracer(), opts.label);
  region.set_items(n);
  region.arg("shards", static_cast<std::int64_t>(shards));
  region.arg("threads", static_cast<std::int64_t>(
                            inline_run ? 1 : pool.thread_count()));

  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::mutex error_mu;
  std::exception_ptr first_error;

  const auto participant_loop = [&](unsigned participant) {
    obs::ScopedSpan lane(obs::installed_tracer(),
                         std::string(opts.label) + ".worker");
    lane.arg("worker", static_cast<std::int64_t>(participant));
    const std::uint64_t t0 = now_ns();
    std::uint64_t claimed = 0;
    while (!failed.load(std::memory_order_relaxed)) {
      const std::size_t shard = next.fetch_add(1, std::memory_order_relaxed);
      if (shard >= shards) break;
      ++claimed;
      try {
        shard_body(shard_bounds(n, shards, shard));
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mu);
        if (!first_error) first_error = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
      }
    }
    lane.set_items(claimed);
    pool.record_shards(participant, claimed, now_ns() - t0);
  };

  if (inline_run) {
    participant_loop(0);
  } else {
    pool.run_on_all(participant_loop);
  }

  if (first_error) std::rethrow_exception(first_error);
  publish_exec_metrics(pool);
}

}  // namespace detail

void publish_exec_metrics(WorkerPool& pool) {
  obs::Observer* o = obs::Observer::installed();
  if (!o) return;
  obs::MetricsRegistry& registry = o->metrics();
  registry.gauge("exec.threads").set(static_cast<double>(pool.thread_count()));
  const std::vector<WorkerStats> stats = pool.stats();
  for (std::size_t i = 0; i < stats.size(); ++i) {
    const obs::MetricLabels labels{{"worker", std::to_string(i)}};
    registry.gauge("exec.tasks", labels)
        .set(static_cast<double>(stats[i].tasks));
    registry.gauge("exec.busy_ns", labels)
        .set(static_cast<double>(stats[i].busy_ns));
    registry.gauge("exec.queue_wait_ns", labels)
        .set(static_cast<double>(stats[i].queue_wait_ns));
  }
}

}  // namespace ddos::exec
