// Deterministic parallel regions: static sharding + ordered reduction.
//
// The determinism contract (DESIGN.md §"Parallel execution") rests on two
// rules this header enforces:
//
//   1. *Static sharding* — the shard structure for n items is a pure
//      function of n (plan_shards/shard_bounds), never of the thread
//      count. A `--threads 1` run executes the exact same shards as a
//      `--threads 8` run, just sequentially.
//   2. *Ordered reduction* — parallel_map_reduce folds per-shard results
//      in shard index order, so floating-point accumulation order is
//      fixed no matter which participant finished which shard first.
//
// Scheduling *within* a region is dynamic (participants race on an atomic
// next-shard counter) because with the two rules above the execution order
// is unobservable in the results.
//
// Shard bodies may throw: the first exception is captured, remaining
// shards are abandoned, and the exception is rethrown on the calling
// thread once the region has quiesced.
#pragma once

#include <cstddef>
#include <functional>
#include <optional>
#include <type_traits>
#include <utility>
#include <vector>

#include "exec/pool.h"

namespace ddos::exec {

/// Half-open item range [begin, end) forming shard `index` of a region.
struct ShardRange {
  std::size_t begin = 0;
  std::size_t end = 0;
  std::size_t index = 0;

  std::size_t size() const { return end - begin; }
};

/// Enough shards to keep any realistic worker complement busy with dynamic
/// scheduling, few enough that per-shard overhead stays invisible.
constexpr std::size_t kDefaultMaxShards = 64;

/// Shard count for n items: min(n, max_shards). A pure function of n —
/// never of the thread count — which is what makes the shard structure
/// (and therefore every result) thread-count invariant.
std::size_t plan_shards(std::size_t n,
                        std::size_t max_shards = kDefaultMaxShards);

/// Bounds of shard `index` out of `shards` over n items: contiguous,
/// balanced to within one item, covering [0, n) exactly.
ShardRange shard_bounds(std::size_t n, std::size_t shards, std::size_t index);

struct RegionOptions {
  const char* label = "exec.region";  // span name; workers get label.worker
  std::size_t max_shards = kDefaultMaxShards;
  WorkerPool* pool = nullptr;  // nullptr = global_pool()
};

namespace detail {
/// Claims shards dynamically across pool participants and runs
/// shard_body(range) for each; runs inline when the pool is single-
/// threaded, the region has one shard, or we are already inside a region.
void run_region(std::size_t n, std::size_t shards, const RegionOptions& opts,
                const std::function<void(const ShardRange&)>& shard_body);
}  // namespace detail

/// Run body(range) over every shard of [0, n). body must not mutate state
/// shared across shards except through its own disjoint output slots.
template <typename Body>
void parallel_for(std::size_t n, const RegionOptions& opts, Body&& body) {
  if (n == 0) return;
  detail::run_region(n, plan_shards(n, opts.max_shards), opts,
                     [&](const ShardRange& range) { body(range); });
}

/// map(range) -> shard result (any movable type); reduce(acc, shard&&)
/// folds the shard results into init *in shard index order* on the calling
/// thread — reduce may therefore touch unsynchronised state (stores,
/// sinks, running statistics) safely.
template <typename Acc, typename Map, typename Reduce>
Acc parallel_map_reduce(std::size_t n, const RegionOptions& opts, Acc init,
                        const Map& map, const Reduce& reduce) {
  if (n == 0) return init;
  const std::size_t shards = plan_shards(n, opts.max_shards);
  using Shard = std::invoke_result_t<Map, const ShardRange&>;
  std::vector<std::optional<Shard>> slots(shards);
  detail::run_region(n, shards, opts, [&](const ShardRange& range) {
    slots[range.index].emplace(map(range));
  });
  Acc acc = std::move(init);
  for (auto& slot : slots) reduce(acc, std::move(*slot));
  return acc;
}

/// Export `exec.threads` and the per-worker `exec.tasks` / `exec.busy_ns` /
/// `exec.queue_wait_ns` gauges (labels {worker: i}) to the installed
/// observer; no-op without one. Called after every region.
void publish_exec_metrics(WorkerPool& pool);

}  // namespace ddos::exec
