// WorkerPool — the thread substrate of the deterministic parallel
// execution engine. Workers are started lazily on the first parallel
// region that wants more than one thread, so a `--threads 1` run (and
// every unit test that never goes parallel) spawns no threads at all.
//
// The pool runs one *region* at a time: run_on_all publishes a job, wakes
// the workers, participates from the calling thread (participant 0), and
// returns once every participant has finished. Scheduling is dynamic —
// participants race to claim shards — but the shard *structure* and the
// reduction order are fixed by the parallel layer (see parallel.h), which
// is what keeps results bit-identical for any thread count.
//
// Per-participant execution accounting (shards run, busy time, publish-to-
// first-claim queue wait) accumulates across regions and is exported as
// the `exec.*` metrics when an observer is installed.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace ddos::exec {

/// Cumulative per-participant accounting (participant 0 is the caller).
struct WorkerStats {
  std::uint64_t tasks = 0;          // shards executed
  std::uint64_t busy_ns = 0;        // wall time inside shard bodies
  std::uint64_t queue_wait_ns = 0;  // job publish -> worker wake latency
};

class WorkerPool {
 public:
  /// `threads` is the total participant count including the calling
  /// thread; 0 selects std::thread::hardware_concurrency().
  explicit WorkerPool(unsigned threads = 0);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  unsigned thread_count() const;

  /// Joins any running workers and retargets the pool; the new complement
  /// starts lazily on the next region. Not callable from inside a region.
  void set_thread_count(unsigned threads);

  /// True while the calling thread is executing a region (worker or
  /// caller). The parallel layer uses this to run nested regions inline
  /// instead of deadlocking on the busy pool.
  static bool inside_region();

  /// Run fn(participant) on the calling thread (participant 0) and on
  /// thread_count()-1 workers concurrently; returns when all participants
  /// have returned. fn must be safe to call concurrently and must not
  /// throw (the parallel layer converts shard exceptions beforehand).
  /// Regions are serialised: one run_on_all at a time per pool.
  void run_on_all(const std::function<void(unsigned)>& fn);

  /// Snapshot of cumulative per-participant stats.
  std::vector<WorkerStats> stats() const;

  /// Total shards executed across all participants — a monotonic count the
  /// stall watchdog can poll to see whether the pool is still moving.
  std::uint64_t progress() const;

  /// Called by the parallel layer after a participant drains its shards.
  void record_shards(unsigned participant, std::uint64_t shards,
                     std::uint64_t busy_ns);

 private:
  void worker_main(unsigned participant);
  void start_workers_locked();
  void stop_workers();
  static std::uint64_t now_ns();

  struct StatsCell {
    std::atomic<std::uint64_t> tasks{0};
    std::atomic<std::uint64_t> busy_ns{0};
    std::atomic<std::uint64_t> queue_wait_ns{0};
  };

  mutable std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  unsigned threads_;
  std::vector<std::thread> workers_;
  const std::function<void(unsigned)>* job_ = nullptr;
  std::uint64_t job_generation_ = 0;
  std::uint64_t job_publish_ns_ = 0;
  unsigned active_workers_ = 0;
  bool stop_ = false;
  std::vector<std::unique_ptr<StatsCell>> cells_;
};

/// The process-wide pool every pipeline stage shares. Constructed on first
/// use with the DDOSREPRO_THREADS environment override when set, otherwise
/// hardware_concurrency.
WorkerPool& global_pool();

/// Retarget the global pool (the CLI's --threads). 0 = hardware.
void set_global_threads(unsigned threads);

}  // namespace ddos::exec
