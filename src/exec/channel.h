// Bounded MPSC channel — the queue that connects the streaming pipeline's
// stages (scenario/driver.cpp). Semantics:
//
//   * push() blocks while the channel is at capacity (backpressure: a fast
//     producer cannot run ahead of a slow consumer by more than `capacity`
//     items, which is what bounds the streaming pipeline's memory);
//   * pop() blocks while the channel is empty and returns std::nullopt
//     only once the channel is closed AND drained, so a consumer loop is
//     simply `while (auto item = ch.pop()) { ... }`;
//   * close() wakes every waiter; push() after close returns false and
//     drops the item (the shutdown-on-exception path: a dying consumer
//     closes the channel and producers unwind instead of deadlocking).
//
// Determinism note: the channel carries *which* items exist, never their
// meaning — stage outputs are pure functions of the item, so capacity and
// scheduling affect wall-clock overlap only, not results.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace ddos::exec {

template <typename T>
class Channel {
 public:
  /// Capacity 0 is clamped to 1 (a zero-slot channel could never move an
  /// item with this two-phase design).
  explicit Channel(std::size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  /// Blocks until a slot frees up or the channel closes. Returns false —
  /// with `value` dropped — when the channel was closed first.
  bool push(T value) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock,
                   [&] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(value));
    ++pushes_;
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until an item arrives or the channel is closed and drained.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;  // closed and drained
    std::optional<T> out(std::move(items_.front()));
    items_.pop_front();
    ++pops_;
    lock.unlock();
    not_full_.notify_one();
    return out;
  }

  /// Idempotent. Producers see push() fail; consumers drain what is queued
  /// and then see pop() return nullopt.
  void close() {
    {
      const std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  bool closed() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  /// Items currently queued (the queue-depth gauge of the stream metrics).
  std::size_t depth() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  std::size_t capacity() const { return capacity_; }

  /// Lifetime totals for the stall watchdog: progress() is monotonic and
  /// advances on every successful push or pop, so a channel whose count
  /// freezes means neither side is moving items.
  std::uint64_t pushes() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return pushes_;
  }
  std::uint64_t pops() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return pops_;
  }
  std::uint64_t progress() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return pushes_ + pops_;
  }

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  std::uint64_t pushes_ = 0;
  std::uint64_t pops_ = 0;
  bool closed_ = false;
};

}  // namespace ddos::exec
