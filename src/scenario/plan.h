// Sweep/shard planning — the "plan" stage of the plan/execute/compact
// pipeline. A longitudinal run is now three separable steps:
//
//   plan     derive_sweep_plan: the retention key sets and per-day domain
//            sets every analysis read needs, a pure function of
//            (world, stitched events);
//   execute  run_longitudinal / run_shard (driver.cpp): sweep the plan's
//            days and join the events — either the whole world in one
//            process, or one shard of a contiguous day partition;
//   compact  store::merge_stores (store/merge.cpp): k-way merge the shard
//            stores into one DRS file byte-identical to the whole run's.
//
// The shard partition cuts the plan's day axis into `count` contiguous
// ranges, balanced by planned domain sweeps per day. It is deterministic:
// every shard process derives the identical plan from the identical
// config (world build, workload, telescope inference and the sweep are
// all pure functions of their seeds — no seed depends on process
// layout), so all shards agree on the cuts without coordinating.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "netsim/simtime.h"
#include "obs/obs.h"
#include "scenario/world.h"
#include "telescope/rsdos.h"
#include "util/flat_map.h"

namespace ddos::scenario {

// Sweep/retention sets derived from the inferred events (the sparse sweep
// of driver.h's header comment). The retention key sets use their own
// id-major layout — (id << 32) | time — independent of the store's
// time-major map keys; they are membership sets, never sorted or
// range-scanned.
struct SweepPlan {
  util::FlatSet<std::uint64_t> daily_keys;    // (nsset, day)
  util::FlatSet<std::uint64_t> window_keys;   // (nsset, window)
  util::FlatSet<std::uint64_t> ns_seen_keys;  // (ip, day)
  std::map<netsim::DayIndex, util::FlatSet<dns::DomainId>> days;
  std::uint64_t domains_planned = 0;
};

SweepPlan derive_sweep_plan(const World& world,
                            const std::vector<telescope::RSDoSEvent>& events,
                            obs::Tracer* tracer, obs::Observer* observer);

// Key-set-backed retention, resolved at compile time in the batched fold
// loop (no std::function call per measurement — see
// MeasurementStore::add_batch).
struct PlanRetention {
  const util::FlatSet<std::uint64_t>& daily_keys;
  const util::FlatSet<std::uint64_t>& window_keys;
  const util::FlatSet<std::uint64_t>& ns_seen_keys;

  bool daily(dns::NssetId nsset, netsim::DayIndex day) const {
    return daily_keys.contains((static_cast<std::uint64_t>(nsset) << 32) |
                               static_cast<std::uint32_t>(day));
  }
  bool window(dns::NssetId nsset, netsim::WindowIndex w) const {
    return window_keys.contains((static_cast<std::uint64_t>(nsset) << 32) |
                                static_cast<std::uint32_t>(w));
  }
  bool ns_seen(netsim::IPv4Addr ip, netsim::DayIndex day) const {
    return ns_seen_keys.contains(
        (static_cast<std::uint64_t>(ip.value()) << 32) |
        static_cast<std::uint32_t>(day));
  }
};

// ---- shard partition (`generate --shard i/N`).

/// One shard of an N-way partition of the world. index is zero-based.
struct ShardSpec {
  std::uint32_t index = 0;
  std::uint32_t count = 1;

  friend bool operator==(const ShardSpec&, const ShardSpec&) = default;
};

/// Parse "i/N". On failure returns nullopt and, when `error` is non-null,
/// fills it with a FlagParser-style diagnostic (starts with the flag
/// name, so the CLI prints "flag --" + error, like parse_mix).
std::optional<ShardSpec> parse_shard(std::string_view spec,
                                     std::string* error = nullptr);

/// A telescope event's final attacked day — the day whose owner shard
/// joins the event. Keyed on the END of the attack so every store read
/// the join performs (previous-day baselines, attack windows) lands at or
/// before the owning shard's day range.
netsim::DayIndex event_final_day(const telescope::RSDoSEvent& ev);

/// The shard's owned day range [day_lo, day_hi). Outer shards carry
/// int64 min/max sentinels so ownership covers every representable day.
struct ShardBounds {
  netsim::DayIndex day_lo = 0;  // first owned day (inclusive)
  netsim::DayIndex day_hi = 0;  // first day past the range (exclusive)

  bool owns_day(netsim::DayIndex day) const {
    return day >= day_lo && day < day_hi;
  }
  bool owns_event(const telescope::RSDoSEvent& ev) const {
    return owns_day(event_final_day(ev));
  }
};

/// The `count + 1` day boundaries of the partition: cuts[i]..cuts[i+1] is
/// shard i's range. cuts[0] / cuts[count] are the int64 sentinels; the
/// interior cuts split the plan's days into contiguous runs balanced by
/// planned domain sweeps (each day's weight is its domain-set size), so
/// shards cost roughly the same even when attacks cluster. Deterministic:
/// a pure function of (plan, count).
std::vector<netsim::DayIndex> shard_day_cuts(const SweepPlan& plan,
                                             std::uint32_t count);

/// Bounds of one shard: {cuts[index], cuts[index + 1]}.
ShardBounds shard_bounds(const SweepPlan& plan, const ShardSpec& spec);

/// The contiguous [begin, end) slice of the feed record vector shard
/// `spec` persists. Records are a deterministic function of the workload
/// seed and identical across shards, so slicing by row index partitions
/// them exactly; concatenating the slices in shard order reproduces the
/// whole vector.
std::pair<std::uint64_t, std::uint64_t> shard_feed_slice(
    std::uint64_t total_rows, const ShardSpec& spec);

}  // namespace ddos::scenario
