#include "scenario/workload.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <unordered_map>

namespace ddos::scenario {

const std::vector<MonthSpec>& paper_monthly_totals() {
  // Table 3, "Total Attacks" and "#DNS Attacks" columns.
  static const std::vector<MonthSpec> kRows = {
      {2020, 11, 159434, 2550}, {2020, 12, 359918, 3876},
      {2021, 1, 174016, 2927},  {2021, 2, 144822, 2873},
      {2021, 3, 279797, 3294},  {2021, 4, 165883, 3522},
      {2021, 5, 199513, 3973},  {2021, 6, 230118, 2244},
      {2021, 7, 338193, 2245},  {2021, 8, 292842, 4473},
      {2021, 9, 245290, 2577},  {2021, 10, 228092, 1968},
      {2021, 11, 284569, 2662}, {2021, 12, 221054, 2984},
      {2022, 1, 235027, 2028},  {2022, 2, 239775, 1368},
      {2022, 3, 241142, 3294},
  };
  return kRows;
}

double expected_impact_at(double rho, const dns::LoadModelParams& model,
                          double base_rtt_ms, double attempt_timeout_ms,
                          int max_attempts) {
  // Load-dependent jitter dispersion — must match Nameserver::query.
  const double sigma = 0.08 + 0.45 * std::min(1.0, rho);
  const double p_resp = dns::response_probability(rho, model);
  const double m = dns::rtt_multiplier(rho, model);
  const double rtt_attempt = m * base_rtt_ms;
  // A response slower than the attempt budget is a resolver timeout.
  // The log-normal jitter smooths the cut-off: effective answer
  // probability is p_resp * P(jitter <= timeout / rtt_attempt).
  const double z = std::log(attempt_timeout_ms / rtt_attempt) / sigma;
  const double p_in_time = 0.5 * (1.0 + std::erf(z / std::numbers::sqrt2));
  const double p = p_resp * p_in_time;
  if (p <= 1e-9) {
    // Essentially nothing answers in time: the rare survivors took the
    // full retry chain and a just-under-budget answer.
    return (static_cast<double>(max_attempts - 1) * attempt_timeout_ms +
            attempt_timeout_ms * 0.95) /
           base_rtt_ms;
  }
  // Conditional mean RTT of in-time answers (truncated at the budget).
  const double answered_rtt = std::min(rtt_attempt, attempt_timeout_ms * 0.9);
  // Expected failed attempts preceding the first success, conditioned on
  // success within max_attempts (all servers at the same utilisation).
  double num = 0.0, den = 0.0;
  double q_pow = 1.0;  // (1-p)^k
  for (int k = 0; k < max_attempts; ++k) {
    num += static_cast<double>(k) * p * q_pow;
    den += p * q_pow;
    q_pow *= (1.0 - p);
  }
  const double expected_retries = den > 0.0 ? num / den : 0.0;
  const double expected_rtt =
      answered_rtt + expected_retries * attempt_timeout_ms;
  return expected_rtt / base_rtt_ms;
}

namespace {

// Inverse standard-normal CDF (Acklam's rational approximation; ~1e-9
// absolute error — far beyond what the calibration needs).
double inverse_normal_cdf(double p) {
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  p = std::clamp(p, 1e-12, 1.0 - 1e-12);
  if (p < 0.02425) {
    const double q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
            c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p > 1.0 - 0.02425) {
    const double q = std::sqrt(-2.0 * std::log(1.0 - p));
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
             c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  const double q = p - 0.5;
  const double r = q * q;
  return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
          a[5]) *
         q /
         (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
}

}  // namespace

double peak_of_samples_correction(double expected_samples, double sigma) {
  const double n = std::max(2.0, expected_samples);
  const double z = inverse_normal_cdf(1.0 - 1.0 / n);
  return std::exp(sigma * z);
}

double calibrate_attack_pps(const dns::Nameserver& ns, double target_impact,
                            const dns::LoadModelParams& model,
                            double attempt_timeout_ms, int max_attempts) {
  const dns::Site& site = ns.sites().front();
  // Binary search utilisation: expected impact is monotone in rho.
  double lo = 0.0, hi = 0.999;
  for (int iter = 0; iter < 60; ++iter) {
    const double mid = 0.5 * (lo + hi);
    const double impact = expected_impact_at(
        mid, model, site.base_rtt_ms, attempt_timeout_ms, max_attempts);
    if (impact < target_impact) lo = mid;
    else hi = mid;
  }
  const double rho = 0.5 * (lo + hi);
  const double attack = rho * site.capacity_pps - ns.legit_pps();
  return std::max(attack, 0.0);
}

namespace {

using netsim::SimTime;

struct Ctx {
  const World& world;
  const LongitudinalParams& params;
  netsim::Rng rng;
  Workload out;
  std::vector<netsim::IPv4Addr> past_other_victims;
  // Per-month scripted DNS attack counts, to keep Table 3 totals aligned.
  std::unordered_map<std::uint64_t, std::uint32_t> scripted_dns_by_month;
};

std::uint64_t month_key(int year, int month) {
  return static_cast<std::uint64_t>(year) * 100 + month;
}

SimTime random_time_in_month(Ctx& ctx, int year, int month) {
  const netsim::DayIndex d0 = netsim::month_start_day(year, month);
  const int days = netsim::days_in_month(year, month);
  const std::int64_t offset = ctx.rng.uniform_int(
      0, static_cast<std::int64_t>(days) * netsim::kSecondsPerDay - 1);
  return netsim::day_start(d0) + offset;
}

std::int64_t sample_duration(Ctx& ctx) {
  const double u = ctx.rng.uniform();
  double seconds = 0.0;
  if (u < 0.45) {
    seconds = ctx.rng.lognormal(std::log(900.0), 0.35);   // 15-minute mode
  } else if (u < 0.80) {
    seconds = ctx.rng.lognormal(std::log(3600.0), 0.30);  // 1-hour mode
  } else {
    seconds = ctx.rng.pareto(3600.0, 1.4);                // heavy tail
  }
  return std::clamp<std::int64_t>(static_cast<std::int64_t>(seconds), 300,
                                  36 * netsim::kSecondsPerHour);
}

double sample_intensity(Ctx& ctx) {
  // Bimodal victim-pps mixture: the telescope-ppm modes near 50 and 6000
  // of §6.4 map to ~280 and ~34K pps through the 341x extrapolation.
  const double u = ctx.rng.uniform();
  double pps = 0.0;
  if (u < 0.50) {
    pps = ctx.rng.lognormal(std::log(280.0), 0.8);
  } else if (u < 0.97) {
    pps = ctx.rng.lognormal(std::log(34e3), 1.0);
  } else {
    pps = ctx.rng.pareto(100e3, 1.1);  // rare monsters
  }
  return std::min(pps, 3e6);
}

void sample_ports(Ctx& ctx, attack::AttackSpec& spec) {
  if (!ctx.rng.chance(0.807)) {
    // Multi-port attack.
    spec.unique_ports = static_cast<std::uint16_t>(2 + ctx.rng.uniform_u64(19));
    spec.protocol = ctx.rng.chance(0.8) ? attack::Protocol::TCP
                                        : attack::Protocol::UDP;
    spec.first_port =
        static_cast<std::uint16_t>(1024 + ctx.rng.uniform_u64(40000));
    return;
  }
  spec.unique_ports = 1;
  const double up = ctx.rng.uniform();
  if (up < 0.904) {
    spec.protocol = attack::Protocol::TCP;
    const double pp = ctx.rng.uniform();
    if (pp < 0.37) spec.first_port = 80;
    else if (pp < 0.67) spec.first_port = 53;
    else if (pp < 0.87) spec.first_port = 443;
    else
      spec.first_port =
          static_cast<std::uint16_t>(1024 + ctx.rng.uniform_u64(40000));
  } else if (up < 0.988) {
    spec.protocol = attack::Protocol::UDP;
    if (ctx.rng.chance(1.0 / 3.0)) spec.first_port = 53;
    else
      spec.first_port =
          static_cast<std::uint16_t>(1024 + ctx.rng.uniform_u64(40000));
  } else {
    spec.protocol = attack::Protocol::ICMP;
    spec.first_port = 0;
  }
}

void add_attack(Ctx& ctx, attack::AttackSpec spec, bool dns, bool scripted) {
  ctx.out.schedule.add(spec);
  if (dns) ++ctx.out.dns_attacks;
  else ++ctx.out.other_attacks;
  if (scripted) ++ctx.out.scripted_attacks;

  // Multi-vector attacks: an invisible companion the telescope misses but
  // the victim very much feels (§4.3, §6.4's impact/intensity decoupling).
  if (!scripted && ctx.rng.chance(ctx.params.multivector_prob)) {
    attack::AttackSpec companion = spec;
    companion.id = 0;
    companion.spoof = ctx.rng.chance(0.6) ? attack::SpoofType::Reflected
                                          : attack::SpoofType::Direct;
    companion.peak_pps = spec.peak_pps * ctx.rng.uniform(0.5, 3.0);
    ctx.out.schedule.add(companion);
    ++ctx.out.invisible_vectors;
  }
}

/// Weighted choice of an NS IP for random DNS-infrastructure attacks:
/// weight grows with hosted-domain count (popular providers attract more
/// attacks) with a floor so small deployments are hit too.
struct DnsTargetSampler {
  std::vector<netsim::IPv4Addr> ips;
  std::vector<double> cumulative;

  explicit DnsTargetSampler(const World& world) {
    double acc = 0.0;
    for (const auto& provider : world.providers) {
      const double w =
          5.0 + std::sqrt(static_cast<double>(provider.domains_hosted));
      for (const auto& ip : provider.ns_ips) {
        // Pool addresses no delegation references are dark to the join —
        // attacks there would be classified non-DNS; skip them.
        if (!world.registry.is_ns_ip(ip)) continue;
        ips.push_back(ip);
        acc += w;
        cumulative.push_back(acc);
      }
    }
  }

  netsim::IPv4Addr sample(netsim::Rng& rng) const {
    const double r = rng.uniform() * cumulative.back();
    const auto it =
        std::lower_bound(cumulative.begin(), cumulative.end(), r);
    return ips[static_cast<std::size_t>(it - cumulative.begin())];
  }
};

void mark_scripted_month(Ctx& ctx, const SimTime& t) {
  int year = 0, month = 0, dom = 0;
  netsim::day_to_ymd(t.day(), year, month, dom);
  ++ctx.scripted_dns_by_month[month_key(year, month)];
}

attack::AttackSpec base_dns_spec(Ctx& ctx, netsim::IPv4Addr target,
                                 SimTime start, std::int64_t duration_s,
                                 double pps) {
  attack::AttackSpec spec;
  spec.target = target;
  spec.start = start;
  spec.duration_s = duration_s;
  spec.peak_pps = pps;
  sample_ports(ctx, spec);
  return spec;
}

// ---- Scripted case events (§6 identifiable incidents) --------------------

void script_fig5_megas(Ctx& ctx) {
  // Eight blasts against the largest provider: huge inferred intensity,
  // negligible impact (Fig. 5 peaks + the "attacks on 10M-domain
  // deployments were ineffective" takeaway).
  const Provider& top = ctx.world.providers.front();
  const int months[][2] = {{2020, 12}, {2021, 2}, {2021, 5}, {2021, 7},
                           {2021, 8}, {2021, 10}, {2022, 1}, {2022, 3}};
  for (const auto& ym : months) {
    const SimTime t = random_time_in_month(ctx, ym[0], ym[1]);
    for (const auto& ip : top.ns_ips) {
      if (!ctx.world.registry.is_ns_ip(ip)) continue;
      attack::AttackSpec spec =
          base_dns_spec(ctx, ip, t, 2 * netsim::kSecondsPerHour,
                        ctx.rng.uniform(0.8e6, 2.5e6));
      spec.protocol = attack::Protocol::TCP;
      spec.first_port = 53;
      spec.unique_ports = 1;
      spec.steady = true;
      add_attack(ctx, spec, /*dns=*/true, /*scripted=*/true);
      mark_scripted_month(ctx, t);
    }
  }
}

void script_table6_ladder(Ctx& ctx) {
  // The Table 6 impact ladder. Each organisation gets one attack on every
  // nameserver of one of its (or its customers') unicast NSSets, with pps
  // calibrated so the expected Impact_on_RTT lands near the paper value.
  struct Case {
    const char* org;
    double impact;
    int year, month;
    std::uint16_t port;  // harmful attacks mix 53/80/443 (§6.3.1)
  };
  const Case cases[] = {
      {"NForce B.V.", 348.0, 2021, 6, 53},
      {"Co-Co NL", 219.0, 2021, 3, 80},
      {"NMU Group", 181.0, 2021, 9, 53},
      {"Hetzner", 174.0, 2021, 5, 80},
      {"My Lock De", 146.0, 2021, 12, 443},
      {"DigiHosting NL", 140.0, 2021, 8, 53},
      {"Apple Russia", 100.0, 2022, 1, 80},
      {"GoDaddy", 76.0, 2021, 4, 53},
      {"Linode", 75.0, 2021, 11, 443},
      {"ITandTEL", 74.0, 2021, 7, 80},
  };
  for (const auto& c : cases) {
    // Find a unicast deployment attributed to the org: the org's own
    // provider if unicast, else a customer hosted on its address space.
    const Provider* target_provider = nullptr;
    const int own = ctx.world.provider_index(c.org);
    if (own >= 0 &&
        ctx.world.providers[static_cast<std::size_t>(own)].style !=
            DeployStyle::FullAnycast &&
        ctx.world.providers[static_cast<std::size_t>(own)].style !=
            DeployStyle::PartialAnycast) {
      target_provider = &ctx.world.providers[static_cast<std::size_t>(own)];
    } else {
      for (const auto& p : ctx.world.providers) {
        if (p.hosted_on == c.org &&
            p.style != DeployStyle::FullAnycast &&
            p.style != DeployStyle::PartialAnycast) {
          target_provider = &p;
          break;
        }
      }
    }
    if (!target_provider && own >= 0)
      target_provider = &ctx.world.providers[static_cast<std::size_t>(own)];
    if (!target_provider) continue;

    SimTime t = random_time_in_month(ctx, c.year, c.month);
    // Apple Russia: the paper pins this one to January 21, 2022.
    if (std::string(c.org) == "Apple Russia")
      t = SimTime::from_utc(2022, 1, 21, 14, 0, 0);

    // De-bias the calibration target for the peak-over-windows statistic:
    // the reported impact is a maximum over jittered window averages.
    const double windows = 24.0;  // 2-hour attack
    const double measured =
        static_cast<double>(target_provider->domains_hosted) * windows /
        netsim::kWindowsPerDay;
    const double per_window = std::max(1.0, measured / windows);
    const double n_eff = std::min(windows, std::max(2.0, measured));
    const double corr =
        peak_of_samples_correction(n_eff, 0.5 / std::sqrt(per_window));
    const double adjusted = std::max(2.0, c.impact / corr);

    for (const auto& ip : target_provider->ns_ips) {
      if (!ctx.world.registry.is_ns_ip(ip)) continue;
      const dns::Nameserver& ns = ctx.world.registry.nameserver(ip);
      const double pps =
          calibrate_attack_pps(ns, adjusted, ctx.params.model);
      attack::AttackSpec spec = base_dns_spec(
          ctx, ip, t, 2 * netsim::kSecondsPerHour, pps);
      spec.protocol = attack::Protocol::TCP;
      spec.first_port = c.port;
      spec.unique_ports = 1;
      spec.steady = true;
      add_attack(ctx, spec, true, true);
      mark_scripted_month(ctx, t);
    }
  }
}

void script_failure_cases(Ctx& ctx) {
  // nic.ru (March 2022): secondary-NS service saturated -> 100% failure on
  // a >10K-domain infrastructure.
  if (const int idx = ctx.world.provider_index("nic.ru"); idx >= 0) {
    const Provider& p = ctx.world.providers[static_cast<std::size_t>(idx)];
    const SimTime t = SimTime::from_utc(2022, 3, 14, 9, 0, 0);
    for (const auto& ip : p.ns_ips) {
      if (!ctx.world.registry.is_ns_ip(ip)) continue;
      const dns::Nameserver& ns = ctx.world.registry.nameserver(ip);
      attack::AttackSpec spec = base_dns_spec(
          ctx, ip, t, 90 * netsim::kSecondsPerMinute,
          ns.sites().front().capacity_pps * 200.0);
      spec.protocol = attack::Protocol::UDP;
      spec.first_port = 53;
      spec.unique_ports = 1;
      spec.steady = true;
      add_attack(ctx, spec, true, true);
      mark_scripted_month(ctx, t);
    }
  }
  // Euskaltel: 83% of queries failing (1405-domain ISP). Per-attempt
  // response probability p solves (1-p)^3 = 0.83 -> p ~ 0.06 -> rho ~ 16.
  if (const int idx = ctx.world.provider_index("Euskaltel"); idx >= 0) {
    const Provider& p = ctx.world.providers[static_cast<std::size_t>(idx)];
    const SimTime t = random_time_in_month(ctx, 2021, 10);
    for (const auto& ip : p.ns_ips) {
      if (!ctx.world.registry.is_ns_ip(ip)) continue;
      const dns::Nameserver& ns = ctx.world.registry.nameserver(ip);
      attack::AttackSpec spec =
          base_dns_spec(ctx, ip, t, 60 * netsim::kSecondsPerMinute,
                        ns.sites().front().capacity_pps * 16.0);
      spec.protocol = attack::Protocol::TCP;
      spec.first_port = 53;
      spec.unique_ports = 1;
      spec.steady = true;
      add_attack(ctx, spec, true, true);
      mark_scripted_month(ctx, t);
    }
  }
  // Contabo: the 19-hour, ~30x outlier of §6.5.
  if (const int idx = ctx.world.provider_index("Contabo"); idx >= 0) {
    const Provider& p = ctx.world.providers[static_cast<std::size_t>(idx)];
    const SimTime t = SimTime::from_utc(2021, 8, 17, 3, 0, 0);
    const double windows = 19.0 * 12.0;
    const double measured = static_cast<double>(p.domains_hosted) * windows /
                            netsim::kWindowsPerDay;
    const double corr = peak_of_samples_correction(
        std::min(windows, std::max(2.0, measured)), 0.5);
    for (const auto& ip : p.ns_ips) {
      if (!ctx.world.registry.is_ns_ip(ip)) continue;
      const dns::Nameserver& ns = ctx.world.registry.nameserver(ip);
      const double pps = calibrate_attack_pps(
          ns, std::max(2.0, 30.0 / corr), ctx.params.model);
      attack::AttackSpec spec =
          base_dns_spec(ctx, ip, t, 19 * netsim::kSecondsPerHour, pps);
      spec.protocol = attack::Protocol::TCP;
      spec.first_port = 80;
      spec.unique_ports = 1;
      spec.steady = true;
      add_attack(ctx, spec, true, true);
      mark_scripted_month(ctx, t);
    }
  }
  // Beeline RU: several March-2022 attacks on Russian banking DNS.
  if (const int idx = ctx.world.provider_index("Beeline RU"); idx >= 0) {
    const Provider& p = ctx.world.providers[static_cast<std::size_t>(idx)];
    std::vector<netsim::IPv4Addr> beeline_ips;
    for (const auto& ip : p.ns_ips) {
      if (ctx.world.registry.is_ns_ip(ip)) beeline_ips.push_back(ip);
    }
    for (int i = 0; !beeline_ips.empty() && i < 6; ++i) {
      const SimTime t = random_time_in_month(ctx, 2022, 3);
      const auto& ip = beeline_ips[ctx.rng.uniform_u64(beeline_ips.size())];
      attack::AttackSpec spec =
          base_dns_spec(ctx, ip, t, sample_duration(ctx),
                        sample_intensity(ctx) * 2.0);
      add_attack(ctx, spec, true, true);
      mark_scripted_month(ctx, t);
    }
  }
}

void script_nuisance_and_resolvers(Ctx& ctx) {
  // Unified Layer shared IP (an American YouTuber's web host that is also
  // an NS): many low-rate, port-80 attacks.
  const Provider* shared = nullptr;
  for (const auto& p : ctx.world.providers) {
    if (p.hosted_on == "Unified Layer") {
      shared = &p;
      break;
    }
  }
  if (shared && !ctx.world.registry.is_ns_ip(shared->ns_ips.front())) {
    shared = nullptr;
  }
  if (shared) {
    const auto count = static_cast<std::uint32_t>(2566.0 / ctx.params.scale);
    const auto& rows = paper_monthly_totals();
    for (std::uint32_t i = 0; i < count; ++i) {
      const auto& row = rows[ctx.rng.uniform_u64(rows.size())];
      const SimTime t = random_time_in_month(ctx, row.year, row.month);
      attack::AttackSpec spec =
          base_dns_spec(ctx, shared->ns_ips.front(), t, sample_duration(ctx),
                        ctx.rng.lognormal(std::log(400.0), 0.5));
      spec.protocol = attack::Protocol::TCP;
      spec.first_port = 80;
      spec.unique_ports = 1;
      add_attack(ctx, spec, true, true);
      mark_scripted_month(ctx, t);
    }
  }

  // Public resolver attack volumes (Table 5): counts scaled from the paper.
  struct ResolverLoad {
    std::size_t resolver_idx;
    double paper_attacks;
  };
  const ResolverLoad loads[] = {{1, 2803.0}, {0, 2298.0}, {2, 1118.0}};
  const auto& rows = paper_monthly_totals();
  for (const auto& rl : loads) {
    if (rl.resolver_idx >= ctx.world.open_resolver_ips.size()) continue;
    const netsim::IPv4Addr ip = ctx.world.open_resolver_ips[rl.resolver_idx];
    const auto count =
        static_cast<std::uint32_t>(rl.paper_attacks / ctx.params.scale);
    for (std::uint32_t i = 0; i < count; ++i) {
      const auto& row = rows[ctx.rng.uniform_u64(rows.size())];
      const SimTime t = random_time_in_month(ctx, row.year, row.month);
      attack::AttackSpec spec = base_dns_spec(
          ctx, ip, t, sample_duration(ctx), sample_intensity(ctx));
      spec.protocol = attack::Protocol::UDP;
      spec.first_port = 53;
      add_attack(ctx, spec, true, true);
      mark_scripted_month(ctx, t);
    }
  }
}

}  // namespace

Workload generate_workload(const World& world,
                           const LongitudinalParams& params) {
  Ctx ctx{world, params, netsim::Rng(params.seed), Workload{}, {}, {}};

  if (params.scripted_cases) {
    script_fig5_megas(ctx);
    script_table6_ladder(ctx);
    script_failure_cases(ctx);
    script_nuisance_and_resolvers(ctx);
  }

  const DnsTargetSampler dns_targets(world);

  for (const auto& row : paper_monthly_totals()) {
    const auto total = static_cast<std::uint32_t>(
        std::llround(row.total_attacks / params.scale));
    auto dns_quota = static_cast<std::uint32_t>(
        std::llround(row.dns_attacks / params.scale));
    const std::uint32_t scripted =
        ctx.scripted_dns_by_month[month_key(row.year, row.month)];
    dns_quota = scripted >= dns_quota ? 0 : dns_quota - scripted;

    for (std::uint32_t i = 0; i < total; ++i) {
      const bool dns = i < dns_quota;
      netsim::IPv4Addr target;
      if (dns) {
        target = dns_targets.sample(ctx.rng);
      } else if (!ctx.past_other_victims.empty() &&
                 ctx.rng.chance(params.victim_reuse_prob)) {
        target = ctx.past_other_victims[static_cast<std::size_t>(
            ctx.rng.uniform_u64(ctx.past_other_victims.size()))];
      } else {
        target = world.random_other_ip(ctx.rng);
        ctx.past_other_victims.push_back(target);
      }

      attack::AttackSpec spec =
          base_dns_spec(ctx, target, random_time_in_month(ctx, row.year,
                                                          row.month),
                        sample_duration(ctx), sample_intensity(ctx));
      // Application-aware premium on port 53 (emergent §6.3.1 port shift).
      if (spec.first_port == 53)
        spec.peak_pps =
            std::min(spec.peak_pps * params.dns_port_intensity_boost, 3e6);
      // Long background floods skew weak (§6.5).
      if (spec.duration_s > 3 * netsim::kSecondsPerHour) spec.peak_pps *= 0.3;
      add_attack(ctx, spec, dns, false);
    }
  }

  // Shared-/24 upstream links: provisioned at a multiple of the servers
  // they front, so they bind only under deliberately oversized floods.
  // Anycast prefixes have no single shared uplink — the /24 is announced
  // at every site — so they are effectively unconstrained here.
  for (const auto& p : world.providers) {
    for (const auto& ip : p.ns_ips) {
      const bool any = world.registry.nameserver(ip).anycast();
      ctx.out.schedule.set_link_capacity(
          ip, any ? 1e9 : p.site_capacity_pps * 6.0);
    }
  }
  for (const auto& ip : world.open_resolver_ips) {
    ctx.out.schedule.set_link_capacity(ip, 1e9);
  }

  return ctx.out;
}

}  // namespace ddos::scenario
