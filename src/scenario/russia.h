// Russian-infrastructure case studies (§5.2): the March 2022 attacks on
// the Ministry of Defence (mil.ru) and on RZD railways, observed through
// both OpenINTEL and the reactive measurement platform.
//
//   * mil.ru — three unicast nameservers on the *same /24* behind one ASN
//     (the §5.2.3 anti-pattern): the shared upstream saturates under a
//     multi-vector attack of modest telescope-visible intensity, and the
//     operator responds by geofencing the network to Russian clients,
//     making the domain unresolvable from the Dutch vantage for most of
//     the 8-day attack (March 11-18; OpenINTEL fails March 12-16).
//   * RZD railways (rzd.ru) — three unicast nameservers on two /24s, one
//     ASN; attacked March 8 15:30-20:45 UTC, with residual pressure that
//     keeps resolution intermittent until ~06:00 the next morning, when
//     the reactive platform observes recovery.
#pragma once

#include <cstdint>
#include <vector>

#include "dns/load_model.h"
#include "netsim/simtime.h"
#include "reactive/platform.h"

namespace ddos::scenario {

struct RussiaParams {
  std::uint64_t seed = 9;
  dns::LoadModelParams model;
};

struct DailySuccess {
  netsim::DayIndex day = 0;
  double success_share = 0.0;  // OK / measured for the day
};

struct MilRuResult {
  netsim::SimTime attack_start, attack_end;
  netsim::SimTime geofence_start, geofence_end;
  /// OpenINTEL view, March 9-19: share of successful resolutions per day.
  std::vector<DailySuccess> openintel_daily;
  /// Reactive campaign (per the platform's iterative all-NS probing).
  std::size_t attack_windows_probed = 0;
  std::size_t unresolvable_attack_windows = 0;
  /// True if during the geofence no nameserver answered a single probe.
  bool no_ns_responsive_during_geofence = false;
  double unresolvable_share() const {
    return attack_windows_probed
               ? static_cast<double>(unresolvable_attack_windows) /
                     attack_windows_probed
               : 0.0;
  }
};

struct RdzResult {
  netsim::SimTime attack_start, attack_end;
  /// Resolution rate while the attack was live (reactive view).
  double during_attack_resolution_rate = 0.0;
  /// When the reactive platform first saw sustained recovery (>= 90%).
  netsim::SimTime recovery_time;
  bool recovered() const { return recovery_time.seconds() != 0; }
};

struct RussiaResult {
  MilRuResult milru;
  RdzResult rdz;
  /// Resilience anti-pattern stats for the report (§5.2.3).
  std::uint32_t milru_distinct_slash24 = 0;
  std::uint32_t rdz_distinct_slash24 = 0;
};

RussiaResult run_russia(const RussiaParams& params);

}  // namespace ddos::scenario
