#include "scenario/driver.h"

#include <algorithm>
#include <map>
#include <optional>
#include <unordered_set>

#include "exec/pool.h"
#include "obs/obs.h"

namespace ddos::scenario {

LongitudinalConfig default_longitudinal_config() {
  LongitudinalConfig cfg;
  cfg.workload.model = cfg.model;
  return cfg;
}

LongitudinalConfig small_longitudinal_config(std::uint64_t seed) {
  LongitudinalConfig cfg;
  cfg.world = small_world_params(seed);
  cfg.workload.seed = seed ^ 0x1234;
  cfg.workload.scale = 400.0;
  cfg.workload.model = cfg.model;
  cfg.sweep_seed = seed ^ 0x77;
  cfg.feed_seed = seed ^ 0x99;
  return cfg;
}

LongitudinalResult run_longitudinal(const LongitudinalConfig& config) {
  obs::Observer* observer = obs::Observer::installed();
  obs::Tracer* tracer = observer ? &observer->tracer() : nullptr;
  obs::ScopedSpan total(tracer, "run_longitudinal");

  LongitudinalResult result;
  {
    obs::ScopedSpan span(tracer, "world.build");
    result.world = build_world(config.world);
    span.set_items(result.world->registry.domain_count());
  }
  const World& world = *result.world;

  {
    obs::ScopedSpan span(tracer, "workload.generate");
    result.workload = generate_workload(world, config.workload);
    span.set_items(result.workload.schedule.size());
  }

  // Telescope: observe backscatter, infer the feed, stitch events.
  {
    obs::ScopedSpan span(tracer, "telescope.infer");
    result.feed = telescope::RSDoSFeed(config.inference, config.backscatter);
    result.feed.ingest(result.workload.schedule, result.darknet,
                       config.feed_seed);
    result.events = result.feed.events();
    span.set_items(result.events.size());
  }

  // ---- Derive sweep/retention sets from the inferred events.
  std::optional<obs::ScopedSpan> plan_span;
  plan_span.emplace(tracer, "sweep.plan");
  std::unordered_set<std::uint64_t> daily_keys;    // (nsset, day)
  std::unordered_set<std::uint64_t> window_keys;   // (nsset, window)
  std::unordered_set<std::uint64_t> ns_seen_keys;  // (ip, day)
  std::map<netsim::DayIndex, std::unordered_set<dns::DomainId>> sweep_plan;

  const auto daily_key = [](dns::NssetId nsset, netsim::DayIndex day) {
    return (static_cast<std::uint64_t>(nsset) << 32) |
           static_cast<std::uint32_t>(day);
  };
  const auto window_key = [](dns::NssetId nsset, netsim::WindowIndex w) {
    return (static_cast<std::uint64_t>(nsset) << 32) |
           static_cast<std::uint32_t>(w);
  };
  const auto ns_key = [](netsim::IPv4Addr ip, netsim::DayIndex day) {
    return (static_cast<std::uint64_t>(ip.value()) << 32) |
           static_cast<std::uint32_t>(day);
  };

  for (const auto& ev : result.events) {
    if (!world.registry.is_ns_ip(ev.victim)) continue;
    const netsim::DayIndex first_day = ev.start_time().day();
    const netsim::DayIndex last_day = (ev.end_time() - 1).day();
    ns_seen_keys.insert(ns_key(ev.victim, first_day - 1));
    // Also retain the attack day's own sighting so the same-day-join
    // ablation measures the method, not the retention policy.
    ns_seen_keys.insert(ns_key(ev.victim, first_day));
    for (const dns::NssetId nsset :
         world.registry.nssets_containing(ev.victim)) {
      daily_keys.insert(daily_key(nsset, first_day - 1));
      for (netsim::WindowIndex w = ev.start_window; w <= ev.end_window; ++w) {
        window_keys.insert(window_key(nsset, w));
      }
      const auto domains = world.registry.domains_of_nsset(nsset);
      for (netsim::DayIndex d = first_day - 1; d <= last_day; ++d) {
        auto& day_set = sweep_plan[d];
        day_set.insert(domains.begin(), domains.end());
      }
    }
  }

  result.store.set_retention(
      [&daily_keys, daily_key](dns::NssetId nsset, netsim::DayIndex day) {
        return daily_keys.contains(daily_key(nsset, day));
      },
      [&window_keys, window_key](dns::NssetId nsset, netsim::WindowIndex w) {
        return window_keys.contains(window_key(nsset, w));
      },
      [&ns_seen_keys, ns_key](netsim::IPv4Addr ip, netsim::DayIndex day) {
        return ns_seen_keys.contains(ns_key(ip, day));
      });

  std::uint64_t domains_planned = 0;
  for (const auto& [day, domains] : sweep_plan) {
    domains_planned += domains.size();
  }
  if (plan_span) {
    plan_span->set_items(domains_planned);
    plan_span->arg("days", static_cast<std::int64_t>(sweep_plan.size()));
  }
  plan_span.reset();
  if (observer) {
    observer->pipeline.run_domains_planned.set(
        static_cast<double>(domains_planned));
  }

  // ---- Sparse sweep.
  {
    obs::ScopedSpan sweep_span(tracer, "sweep");
    openintel::SweeperParams sp;
    sp.resolver = config.resolver;
    sp.model = config.model;
    sp.seed = config.sweep_seed;
    const openintel::Sweeper sweeper(world.registry, result.workload.schedule,
                                     sp);
    const std::uint64_t days_total = sweep_plan.size();
    std::uint64_t days_done = 0;
    std::vector<dns::DomainId> day_domains;
    for (const auto& [day, domains] : sweep_plan) {
      obs::ScopedSpan day_span(tracer, "sweep.day");
      day_span.arg("day", static_cast<std::int64_t>(day));
      day_span.set_items(domains.size());
      day_domains.assign(domains.begin(), domains.end());
      std::sort(day_domains.begin(), day_domains.end());
      // Parallel across domains within the day; the sink below runs on
      // this thread in domain order, so store folds stay deterministic.
      sweeper.sweep_domains(day, day_domains, exec::global_pool(),
                            [&result](const openintel::Measurement& m) {
                              result.store.add(m);
                              ++result.swept_measurements;
                            });
      ++days_done;
      if (observer) {
        observer->pipeline.run_days_swept.set(static_cast<double>(days_done));
        obs::ProgressEvent progress;
        progress.stage = "sweep";
        progress.day = day;
        progress.days_done = days_done;
        progress.days_total = days_total;
        progress.measurements = result.swept_measurements;
        progress.events = result.events.size();
        const double elapsed_s =
            static_cast<double>(total.elapsed_ns()) / 1e9;
        progress.sweep_rate_per_s =
            elapsed_s > 0.0
                ? static_cast<double>(result.swept_measurements) / elapsed_s
                : 0.0;
        observer->emit_progress(progress, days_done == days_total);
      }
    }
    sweep_span.set_items(result.swept_measurements);
  }
  // Drop the retention closures: the key sets above go out of scope here.
  result.store.set_retention(nullptr, nullptr, nullptr);
  if (observer) {
    observer->pipeline.run_store_measurements.set(
        static_cast<double>(result.swept_measurements));
  }

  // ---- Join.
  {
    obs::ScopedSpan span(tracer, "join");
    const core::ResilienceClassifier classifier(world.registry, world.census,
                                                world.routes, world.orgs);
    core::JoinPipeline pipeline(world.registry, result.store, classifier,
                                config.join);
    result.joined = pipeline.run(result.events);
    result.join_stats = pipeline.stats();
    span.set_items(result.joined.size());
  }
  if (observer) {
    obs::ProgressEvent progress;
    progress.stage = "join";
    progress.days_done = sweep_plan.size();
    progress.days_total = sweep_plan.size();
    progress.measurements = result.swept_measurements;
    progress.events = result.events.size();
    progress.joined = result.joined.size();
    observer->emit_progress(progress, /*force=*/true);
  }
  return result;
}

}  // namespace ddos::scenario
