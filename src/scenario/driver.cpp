#include "scenario/driver.h"

#include <algorithm>
#include <map>
#include <unordered_set>

namespace ddos::scenario {

LongitudinalConfig default_longitudinal_config() {
  LongitudinalConfig cfg;
  cfg.workload.model = cfg.model;
  return cfg;
}

LongitudinalConfig small_longitudinal_config(std::uint64_t seed) {
  LongitudinalConfig cfg;
  cfg.world = small_world_params(seed);
  cfg.workload.seed = seed ^ 0x1234;
  cfg.workload.scale = 400.0;
  cfg.workload.model = cfg.model;
  cfg.sweep_seed = seed ^ 0x77;
  cfg.feed_seed = seed ^ 0x99;
  return cfg;
}

LongitudinalResult run_longitudinal(const LongitudinalConfig& config) {
  LongitudinalResult result;
  result.world = build_world(config.world);
  const World& world = *result.world;

  result.workload = generate_workload(world, config.workload);

  // Telescope: observe backscatter, infer the feed, stitch events.
  result.feed = telescope::RSDoSFeed(config.inference, config.backscatter);
  result.feed.ingest(result.workload.schedule, result.darknet,
                     config.feed_seed);
  result.events = result.feed.events();

  // ---- Derive sweep/retention sets from the inferred events.
  std::unordered_set<std::uint64_t> daily_keys;    // (nsset, day)
  std::unordered_set<std::uint64_t> window_keys;   // (nsset, window)
  std::unordered_set<std::uint64_t> ns_seen_keys;  // (ip, day)
  std::map<netsim::DayIndex, std::unordered_set<dns::DomainId>> sweep_plan;

  const auto daily_key = [](dns::NssetId nsset, netsim::DayIndex day) {
    return (static_cast<std::uint64_t>(nsset) << 32) |
           static_cast<std::uint32_t>(day);
  };
  const auto window_key = [](dns::NssetId nsset, netsim::WindowIndex w) {
    return (static_cast<std::uint64_t>(nsset) << 32) |
           static_cast<std::uint32_t>(w);
  };
  const auto ns_key = [](netsim::IPv4Addr ip, netsim::DayIndex day) {
    return (static_cast<std::uint64_t>(ip.value()) << 32) |
           static_cast<std::uint32_t>(day);
  };

  for (const auto& ev : result.events) {
    if (!world.registry.is_ns_ip(ev.victim)) continue;
    const netsim::DayIndex first_day = ev.start_time().day();
    const netsim::DayIndex last_day = (ev.end_time() - 1).day();
    ns_seen_keys.insert(ns_key(ev.victim, first_day - 1));
    // Also retain the attack day's own sighting so the same-day-join
    // ablation measures the method, not the retention policy.
    ns_seen_keys.insert(ns_key(ev.victim, first_day));
    for (const dns::NssetId nsset :
         world.registry.nssets_containing(ev.victim)) {
      daily_keys.insert(daily_key(nsset, first_day - 1));
      for (netsim::WindowIndex w = ev.start_window; w <= ev.end_window; ++w) {
        window_keys.insert(window_key(nsset, w));
      }
      const auto domains = world.registry.domains_of_nsset(nsset);
      for (netsim::DayIndex d = first_day - 1; d <= last_day; ++d) {
        auto& day_set = sweep_plan[d];
        day_set.insert(domains.begin(), domains.end());
      }
    }
  }

  result.store.set_retention(
      [&daily_keys, daily_key](dns::NssetId nsset, netsim::DayIndex day) {
        return daily_keys.contains(daily_key(nsset, day));
      },
      [&window_keys, window_key](dns::NssetId nsset, netsim::WindowIndex w) {
        return window_keys.contains(window_key(nsset, w));
      },
      [&ns_seen_keys, ns_key](netsim::IPv4Addr ip, netsim::DayIndex day) {
        return ns_seen_keys.contains(ns_key(ip, day));
      });

  // ---- Sparse sweep.
  openintel::SweeperParams sp;
  sp.resolver = config.resolver;
  sp.model = config.model;
  sp.seed = config.sweep_seed;
  const openintel::Sweeper sweeper(world.registry, result.workload.schedule,
                                   sp);
  std::vector<dns::DomainId> day_domains;
  for (const auto& [day, domains] : sweep_plan) {
    day_domains.assign(domains.begin(), domains.end());
    std::sort(day_domains.begin(), day_domains.end());
    sweeper.sweep_domains(day, day_domains,
                          [&result](const openintel::Measurement& m) {
                            result.store.add(m);
                            ++result.swept_measurements;
                          });
  }
  // Drop the retention closures: the key sets above go out of scope here.
  result.store.set_retention(nullptr, nullptr, nullptr);

  // ---- Join.
  const core::ResilienceClassifier classifier(world.registry, world.census,
                                              world.routes, world.orgs);
  core::JoinPipeline pipeline(world.registry, result.store, classifier,
                              config.join);
  result.joined = pipeline.run(result.events);
  result.join_stats = pipeline.stats();
  return result;
}

}  // namespace ddos::scenario
