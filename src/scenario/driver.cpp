#include "scenario/driver.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <map>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <utility>

#include "exec/channel.h"
#include "exec/pool.h"
#include "exec/stage.h"
#include "obs/obs.h"
#include "scenario/plan.h"
#include "store/dataset.h"
#include "store/epoch.h"
#include "store/reader.h"
#include "store/scan.h"
#include "store/writer.h"
#include "util/flat_map.h"
#include "util/strings.h"

namespace ddos::scenario {

LongitudinalConfig default_longitudinal_config() {
  LongitudinalConfig cfg;
  cfg.workload.model = cfg.model;
  return cfg;
}

LongitudinalConfig small_longitudinal_config(std::uint64_t seed) {
  LongitudinalConfig cfg;
  cfg.world = small_world_params(seed);
  cfg.workload.seed = seed ^ 0x1234;
  cfg.workload.scale = 400.0;
  cfg.workload.model = cfg.model;
  cfg.sweep_seed = seed ^ 0x77;
  cfg.feed_seed = seed ^ 0x99;
  return cfg;
}

namespace {

// Shared head of the materialized and streaming drivers: world + workload
// into `result`. The telescope stage differs between the two (materialized
// retains the record vector; streaming retires it shard by shard), so it
// lives with each driver.
void run_world_and_workload(const LongitudinalConfig& config,
                            LongitudinalResult& result, obs::Tracer* tracer) {
  {
    obs::ScopedSpan span(tracer, "world.build");
    result.world = build_world(config.world);
    span.set_items(result.world->registry.domain_count());
  }
  {
    obs::ScopedSpan span(tracer, "workload.generate");
    result.workload = generate_workload(*result.world, config.workload);
    span.set_items(result.workload.schedule.size());
  }
}

}  // namespace

LongitudinalResult run_longitudinal(const LongitudinalConfig& config) {
  obs::Observer* observer = obs::Observer::installed();
  obs::Tracer* tracer = observer ? &observer->tracer() : nullptr;
  obs::ScopedSpan total(tracer, "run_longitudinal");

  LongitudinalResult result;
  run_world_and_workload(config, result, tracer);
  // Telescope: observe backscatter, infer the feed, stitch events.
  {
    obs::ScopedSpan span(tracer, "telescope.infer");
    result.feed = telescope::RSDoSFeed(config.inference, config.backscatter);
    result.feed.ingest(result.workload.schedule, result.darknet,
                       config.feed_seed);
    result.feed_records = result.feed.records().size();
    result.events = result.feed.events();
    span.set_items(result.events.size());
  }
  const World& world = *result.world;

  const SweepPlan plan =
      derive_sweep_plan(world, result.events, tracer, observer);
  const PlanRetention retention{plan.daily_keys, plan.window_keys,
                                plan.ns_seen_keys};
  const auto& sweep_plan = plan.days;

  // ---- Sparse sweep.
  {
    obs::ScopedSpan sweep_span(tracer, "sweep");
    openintel::SweeperParams sp;
    sp.resolver = config.resolver;
    sp.model = config.model;
    sp.seed = config.sweep_seed;
    const openintel::Sweeper sweeper(world.registry, result.workload.schedule,
                                     sp);
    const std::uint64_t days_total = sweep_plan.size();
    std::uint64_t days_done = 0;
    std::vector<dns::DomainId> day_domains;
    for (const auto& [day, domains] : sweep_plan) {
      obs::ScopedSpan day_span(tracer, "sweep.day");
      day_span.arg("day", static_cast<std::int64_t>(day));
      day_span.set_items(domains.size());
      day_domains = domains.sorted_keys();
      // Parallel across domains within the day; the batch sink below runs
      // on this thread in shard (= domain) order, and the store's grouped
      // fold preserves per-key measurement order, so the resulting state
      // is bit-identical to per-measurement add() at any thread count.
      sweeper.sweep_domains_batched(
          day, day_domains, exec::global_pool(),
          [&result, &retention](std::span<const openintel::Measurement> batch) {
            result.store.add_batch(batch, retention);
            result.swept_measurements += batch.size();
          });
      ++days_done;
      if (observer) {
        observer->pipeline.run_days_swept.set(static_cast<double>(days_done));
        obs::ProgressEvent progress;
        progress.stage = "sweep";
        progress.day = day;
        progress.days_done = days_done;
        progress.days_total = days_total;
        progress.measurements = result.swept_measurements;
        progress.events = result.events.size();
        const double elapsed_s =
            static_cast<double>(total.elapsed_ns()) / 1e9;
        progress.sweep_rate_per_s =
            elapsed_s > 0.0
                ? static_cast<double>(result.swept_measurements) / elapsed_s
                : 0.0;
        observer->emit_progress(progress, days_done == days_total);
      }
    }
    sweep_span.set_items(result.swept_measurements);
  }
  if (observer) {
    observer->pipeline.run_store_measurements.set(
        static_cast<double>(result.swept_measurements));
  }

  // ---- Join.
  {
    obs::ScopedSpan span(tracer, "join");
    const core::ResilienceClassifier classifier(world.registry, world.census,
                                                world.routes, world.orgs);
    core::JoinPipeline pipeline(world.registry, result.store, classifier,
                                config.join);
    result.joined = pipeline.run(result.events);
    result.join_stats = pipeline.stats();
    span.set_items(result.joined.size());
  }
  if (observer) {
    obs::ProgressEvent progress;
    progress.stage = "join";
    progress.days_done = sweep_plan.size();
    progress.days_total = sweep_plan.size();
    progress.measurements = result.swept_measurements;
    progress.events = result.events.size();
    progress.joined = result.joined.size();
    observer->emit_progress(progress, /*force=*/true);
  }
  return result;
}

// ---- DRS persistence (generate/analyze stage split).

namespace {

// %.17g round-trips every finite double exactly (17 significant digits);
// the store's provenance must restore configs bit-for-bit.
std::string meta_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

std::uint64_t meta_u64(const store::Reader& reader, const std::string& key) {
  std::uint64_t out = 0;
  if (!util::parse_u64(reader.meta_value(key), out)) {
    throw store::StoreError(reader.path() + ": meta key '" + key +
                            "' is not an unsigned integer");
  }
  return out;
}

double meta_f64(const store::Reader& reader, const std::string& key) {
  double out = 0.0;
  if (!util::parse_double(reader.meta_value(key), out)) {
    throw store::StoreError(reader.path() + ": meta key '" + key +
                            "' is not a double");
  }
  return out;
}

void check_count(const store::Reader& reader, const std::string& what,
                 std::uint64_t stored, std::uint64_t got) {
  if (stored != got) {
    throw store::StoreError(reader.path() + ": " + what + " count mismatch (" +
                            std::to_string(got) + " decoded, provenance says " +
                            std::to_string(stored) +
                            ") — store and generating run disagree");
  }
}

// The provenance meta block, shared between save_run and the streaming
// writer so the two paths can never emit different key sets or orders (the
// footer serialises meta in insertion order, and CI compares the files
// byte for byte).
void write_provenance_meta(store::Writer& writer,
                           const LongitudinalConfig& config, unsigned threads) {
  writer.add_meta("format.tool", "ddosrepro");

  const WorldParams& w = config.world;
  writer.add_meta("world.seed", std::to_string(w.seed));
  writer.add_meta("world.provider_count", std::to_string(w.provider_count));
  writer.add_meta("world.domain_count", std::to_string(w.domain_count));
  writer.add_meta("world.size_exponent", meta_double(w.size_exponent));
  writer.add_meta("world.anycast_recall", meta_double(w.anycast_recall));
  writer.add_meta("world.open_resolver_misconfigs",
                  std::to_string(w.open_resolver_misconfigs));
  writer.add_meta("world.single_ns_share", meta_double(w.single_ns_share));
  writer.add_meta("world.lame_ns_share", meta_double(w.lame_ns_share));
  writer.add_meta("world.capacity_base_pps", meta_double(w.capacity_base_pps));
  writer.add_meta("world.capacity_exponent", meta_double(w.capacity_exponent));
  writer.add_meta("world.legit_pps_per_domain",
                  meta_double(w.legit_pps_per_domain));
  writer.add_meta("world.legit_pps_floor", meta_double(w.legit_pps_floor));

  const LongitudinalParams& wl = config.workload;
  writer.add_meta("workload.seed", std::to_string(wl.seed));
  writer.add_meta("workload.scale", meta_double(wl.scale));
  writer.add_meta("workload.multivector_prob", meta_double(wl.multivector_prob));
  writer.add_meta("workload.victim_reuse_prob",
                  meta_double(wl.victim_reuse_prob));
  writer.add_meta("workload.dns_port_intensity_boost",
                  meta_double(wl.dns_port_intensity_boost));
  writer.add_meta("workload.scripted_cases", wl.scripted_cases ? "1" : "0");

  const telescope::InferenceParams& inf = config.inference;
  writer.add_meta("inference.min_packets_per_window",
                  std::to_string(inf.min_packets_per_window));
  writer.add_meta("inference.min_distinct_slash16",
                  std::to_string(inf.min_distinct_slash16));
  writer.add_meta("inference.min_ppm", meta_double(inf.min_ppm));
  writer.add_meta("inference.max_gap_windows",
                  std::to_string(inf.max_gap_windows));

  const core::JoinParams& jp = config.join;
  writer.add_meta("join.min_measured_domains",
                  std::to_string(jp.min_measured_domains));
  writer.add_meta("join.match_slash24", jp.match_slash24 ? "1" : "0");
  writer.add_meta("join.merge_concurrent", jp.merge_concurrent ? "1" : "0");

  writer.add_meta("run.sweep_seed", std::to_string(config.sweep_seed));
  writer.add_meta("run.feed_seed", std::to_string(config.feed_seed));
  writer.add_meta("run.threads", std::to_string(threads));
}

// Result/stat counts, written by save_run right after the provenance and
// by the streaming writer at the end of the run; add_meta overwrites in
// place for existing keys, so insertion position — not rewrite time —
// fixes the footer order either way.
void write_result_meta(store::Writer& writer, std::uint64_t attacks,
                       std::uint64_t feed_records, std::uint64_t events,
                       std::uint64_t joined, std::uint64_t swept,
                       const core::JoinStats& js) {
  writer.add_meta("result.attacks", std::to_string(attacks));
  writer.add_meta("result.feed_records", std::to_string(feed_records));
  writer.add_meta("result.events", std::to_string(events));
  writer.add_meta("result.joined", std::to_string(joined));
  writer.add_meta("result.swept_measurements", std::to_string(swept));

  writer.add_meta("stats.total_events", std::to_string(js.total_events));
  writer.add_meta("stats.open_resolver_filtered",
                  std::to_string(js.open_resolver_filtered));
  writer.add_meta("stats.non_dns", std::to_string(js.non_dns));
  writer.add_meta("stats.not_seen_day_before",
                  std::to_string(js.not_seen_day_before));
  writer.add_meta("stats.below_measurement_floor",
                  std::to_string(js.below_measurement_floor));
  writer.add_meta("stats.no_baseline", std::to_string(js.no_baseline));
  writer.add_meta("stats.joined", std::to_string(js.joined));
  writer.add_meta("stats.dns_events", std::to_string(js.dns_events));
}

}  // namespace

std::uint64_t save_run(const std::string& path,
                       const LongitudinalConfig& config, unsigned threads,
                       const LongitudinalResult& result) {
  obs::Observer* observer = obs::Observer::installed();
  obs::ScopedSpan span(observer ? &observer->tracer() : nullptr, "store.write");

  store::Writer writer(path);
  write_provenance_meta(writer, config, threads);
  write_result_meta(writer, result.workload.schedule.size(),
                    result.feed_records, result.events.size(),
                    result.joined.size(), result.swept_measurements,
                    result.join_stats);

  store::write_feed_records(writer, result.feed.records());
  store::write_measurements(writer, result.store);
  store::write_joined_events(writer, result.joined);

  writer.finish();
  const std::uint64_t bytes = writer.bytes_written();
  span.set_items(writer.column_count());
  if (observer) {
    observer->pipeline.store_bytes_written.set(static_cast<double>(bytes));
  }
  return bytes;
}

// ---- sharded generation (plan/execute; compaction is store::merge_stores).

ShardRunResult run_shard(const LongitudinalConfig& config,
                         const ShardSpec& spec, unsigned threads,
                         const std::string& store_path) {
  if (spec.count == 0 || spec.index >= spec.count) {
    throw std::invalid_argument(
        "run_shard: need shard index < count, count >= 1");
  }
  obs::Observer* observer = obs::Observer::installed();
  obs::Tracer* tracer = observer ? &observer->tracer() : nullptr;
  obs::ScopedSpan total(tracer, "run_shard");
  total.arg("shard", static_cast<std::int64_t>(spec.index));
  total.arg("count", static_cast<std::int64_t>(spec.count));

  LongitudinalResult result;
  run_world_and_workload(config, result, tracer);
  {
    obs::ScopedSpan span(tracer, "telescope.infer");
    result.feed = telescope::RSDoSFeed(config.inference, config.backscatter);
    result.feed.ingest(result.workload.schedule, result.darknet,
                       config.feed_seed);
    result.feed_records = result.feed.records().size();
    result.events = result.feed.events();
    span.set_items(result.events.size());
  }
  const World& world = *result.world;

  // The GLOBAL plan: every shard derives the identical retention sets,
  // day-domain sets and day cuts from the identical event list (world,
  // workload, telescope and sweep are pure functions of their seeds, so
  // no seed depends on process layout). A day swept here is therefore
  // bit-identical to the same day swept by the whole-world run, and all
  // shards agree on the partition without coordinating.
  const SweepPlan plan =
      derive_sweep_plan(world, result.events, tracer, observer);
  const PlanRetention retention{plan.daily_keys, plan.window_keys,
                                plan.ns_seen_keys};
  const ShardBounds bounds = shard_bounds(plan, spec);

  // Owned events (canonical stitch order preserved) and the sweep halo:
  // an event owned here reads daily/ns_seen state at first_day-1 and its
  // attack windows, all on days <= its final (owning) day — so sweeping
  // [min over owned of first_day-1, day_hi) with the global retention
  // covers every read this shard's joins perform.
  std::vector<std::uint32_t> owned;
  netsim::DayIndex halo_lo = bounds.day_lo;
  for (std::uint32_t idx = 0;
       idx < static_cast<std::uint32_t>(result.events.size()); ++idx) {
    const auto& ev = result.events[idx];
    if (!bounds.owns_event(ev)) continue;
    owned.push_back(idx);
    halo_lo = std::min(halo_lo, ev.start_time().day() - 1);
  }

  // ---- Sparse sweep over the shard's day range (owned days + halo).
  {
    obs::ScopedSpan sweep_span(tracer, "sweep");
    openintel::SweeperParams sp;
    sp.resolver = config.resolver;
    sp.model = config.model;
    sp.seed = config.sweep_seed;
    const openintel::Sweeper sweeper(world.registry, result.workload.schedule,
                                     sp);
    std::uint64_t days_total = 0;
    for (const auto& [day, domains] : plan.days) {
      if (day >= halo_lo && day < bounds.day_hi) ++days_total;
    }
    std::uint64_t days_done = 0;
    std::vector<dns::DomainId> day_domains;
    for (const auto& [day, domains] : plan.days) {
      if (day < halo_lo || day >= bounds.day_hi) continue;
      // Halo days below day_lo serve this shard's joins only; their
      // folded state is retired before the store is written and their
      // measurements belong to the preceding shard's count.
      const bool owned_day = bounds.owns_day(day);
      obs::ScopedSpan day_span(tracer, "sweep.day");
      day_span.arg("day", static_cast<std::int64_t>(day));
      day_span.set_items(domains.size());
      day_domains = domains.sorted_keys();
      sweeper.sweep_domains_batched(
          day, day_domains, exec::global_pool(),
          [&result, &retention,
           owned_day](std::span<const openintel::Measurement> batch) {
            result.store.add_batch(batch, retention);
            if (owned_day) result.swept_measurements += batch.size();
          });
      ++days_done;
      if (observer) {
        observer->pipeline.run_days_swept.set(static_cast<double>(days_done));
        obs::ProgressEvent progress;
        progress.stage = "sweep";
        progress.day = day;
        progress.days_done = days_done;
        progress.days_total = days_total;
        progress.measurements = result.swept_measurements;
        progress.events = result.events.size();
        const double elapsed_s = static_cast<double>(total.elapsed_ns()) / 1e9;
        progress.sweep_rate_per_s =
            elapsed_s > 0.0
                ? static_cast<double>(result.swept_measurements) / elapsed_s
                : 0.0;
        observer->emit_progress(progress, days_done == days_total);
      }
    }
    sweep_span.set_items(result.swept_measurements);
  }
  if (observer) {
    observer->pipeline.run_store_measurements.set(
        static_cast<double>(result.swept_measurements));
  }

  // ---- Join the owned events, in canonical stitch order, pre-merge.
  // The concurrent-event merge is deferred to the compaction stage (it is
  // a global sort over all shards' rows); src_event records each output
  // row's canonical telescope-event index so the merger can interleave
  // the shards back into exactly the single-process pre-merge vector.
  core::JoinStats stats;
  std::vector<std::uint64_t> src_event;
  {
    obs::ScopedSpan span(tracer, "join");
    const core::ResilienceClassifier classifier(world.registry, world.census,
                                                world.routes, world.orgs);
    const core::JoinPipeline pipeline(world.registry, result.store, classifier,
                                      config.join);
    stats.total_events = owned.size();
    core::JoinPipeline::BaselineCache baselines;
    for (const std::uint32_t idx : owned) {
      const std::size_t before = result.joined.size();
      pipeline.join_event(result.events[idx], result.joined, stats,
                          &baselines);
      for (std::size_t i = before; i < result.joined.size(); ++i) {
        src_event.push_back(idx);
      }
    }
    result.join_stats = stats;
    span.set_items(result.joined.size());
  }

  // Keep only owned-day state: the halo existed solely to serve reads, and
  // the preceding shard persists those days itself. After this the store
  // remnant is exactly the whole-run store restricted to [day_lo, day_hi).
  result.store.retire_days_below(bounds.day_lo);

  // ---- Shard store: save_run's exact meta/block layout plus a shard
  // manifest and the src_event column (both stripped by the merger).
  const auto [feed_lo, feed_hi] = shard_feed_slice(result.feed_records, spec);
  {
    obs::ScopedSpan span(tracer, "store.write");
    store::Writer writer(store_path);
    write_provenance_meta(writer, config, threads);
    write_result_meta(writer, result.workload.schedule.size(),
                      feed_hi - feed_lo, result.events.size(),
                      result.joined.size(), result.swept_measurements, stats);
    writer.add_meta("shard.index", std::to_string(spec.index));
    writer.add_meta("shard.count", std::to_string(spec.count));
    writer.add_meta("shard.owned_events", std::to_string(owned.size()));

    const std::vector<telescope::RSDoSRecord> slice(
        result.feed.records().begin() +
            static_cast<std::ptrdiff_t>(feed_lo),
        result.feed.records().begin() + static_cast<std::ptrdiff_t>(feed_hi));
    store::write_feed_records(writer, slice);
    store::write_measurements(writer, result.store);
    store::write_joined_events(writer, result.joined);
    writer.add_u64("shard", "src_event", src_event,
                   store::Encoding::DeltaVarint);

    writer.finish();
    result.store_bytes = writer.bytes_written();
    span.set_items(writer.column_count());
    if (observer) {
      observer->pipeline.store_bytes_written.set(
          static_cast<double>(result.store_bytes));
    }
  }

  ShardRunResult out;
  out.spec = spec;
  out.day_lo = bounds.day_lo;
  out.day_hi = bounds.day_hi;
  out.events_total = result.events.size();
  out.owned_events = owned.size();
  out.feed_rows = feed_hi - feed_lo;
  out.joined_rows = result.joined.size();
  out.swept_measurements = result.swept_measurements;
  out.store_bytes = result.store_bytes;
  return out;
}

// ---- streaming day-epoch pipeline.

namespace {

/// One sweep-plan day queued to the sweep stage.
struct SweepTask {
  netsim::DayIndex day = 0;
  std::vector<dns::DomainId> domains;  // sorted, from the plan's day set
};

/// One swept day's measurements, preserved as the sink-call batches in
/// sink-call order so the fold stage replays the exact add_batch sequence
/// the materialized driver performs.
struct SweptDay {
  netsim::DayIndex day = 0;
  std::vector<std::vector<openintel::Measurement>> batches;
};

}  // namespace

LongitudinalResult run_longitudinal_streaming(const LongitudinalConfig& config,
                                              const StreamingOptions& options) {
  if (options.window_days < 1) {
    throw std::invalid_argument(
        "streaming window_days must be >= 1 (day d's fold still feeds the "
        "day-after join)");
  }

  obs::Observer* observer = obs::Observer::installed();
  obs::Tracer* tracer = observer ? &observer->tracer() : nullptr;
  obs::ScopedSpan total(tracer, "run_longitudinal_streaming");

  LongitudinalResult result;
  run_world_and_workload(config, result, tracer);

  // Optional streaming DRS store, opened before the telescope stage so the
  // feed columns stream straight from the ingest shards: provenance meta
  // and feed blocks up front (save_run's block order starts with "feed"),
  // aggregate columns appended per retired epoch, result meta + joined
  // events at the end.
  std::optional<store::Writer> writer;
  std::optional<store::AggregateColumnsAppender> daily_columns;
  std::optional<store::AggregateColumnsAppender> window_columns;
  std::optional<store::NsSeenAppender> ns_seen_columns;
  if (!options.store_path.empty()) {
    writer.emplace(options.store_path);
    write_provenance_meta(*writer, config, options.threads);
    daily_columns.emplace("daily");
    window_columns.emplace("window");
    ns_seen_columns.emplace();
  }

  // Telescope: observe backscatter, infer the feed, stitch events — but
  // retire each ingest shard's records the moment they are folded into the
  // incremental stitcher (and the store's feed columns). The ordered shard
  // reduction feeds the sink in records_ order, and EventStitcher::finish
  // equals segment_events over the same multiset, so events, columns and
  // counts are bit-identical to the materialized telescope block while
  // peak memory stays bounded by the parallel region itself.
  {
    obs::ScopedSpan span(tracer, "telescope.infer");
    result.feed = telescope::RSDoSFeed(config.inference, config.backscatter);
    telescope::EventStitcher stitcher(config.inference);
    std::optional<store::FeedColumnsAppender> feed_columns;
    if (writer) feed_columns.emplace();
    result.feed_records = result.feed.ingest_stream(
        result.workload.schedule, result.darknet, config.feed_seed,
        [&](std::vector<telescope::RSDoSRecord>&& records) {
          for (const telescope::RSDoSRecord& rec : records) {
            if (feed_columns) feed_columns->append(rec);
            stitcher.add(rec);
            if (options.retain_feed) result.feed.add_record(rec);
          }
        });
    if (feed_columns) feed_columns->flush_to(*writer);
    result.events = stitcher.finish();
    span.set_items(result.events.size());
  }
  const World& world = *result.world;

  const SweepPlan plan =
      derive_sweep_plan(world, result.events, tracer, observer);
  const PlanRetention retention{plan.daily_keys, plan.window_keys,
                                plan.ns_seen_keys};
  std::vector<netsim::DayIndex> plan_days;
  plan_days.reserve(plan.days.size());
  for (const auto& [day, domains] : plan.days) plan_days.push_back(day);

  // Join readiness: an event's store reads — daily and ns_seen at
  // first_day-1, ns_seen at first_day, windows across the attack — are all
  // for days <= its last attacked day, and day-d sweeps only write day-d
  // state. So once every plan day <= D is folded, every event with
  // last day <= D joins finally. ready_order lists events by (last day,
  // canonical index); min_first_read[i] is the earliest day any event from
  // position i on still reads (a suffix-min of first_day-1), which is the
  // retirement watermark once the cursor passes the joined prefix.
  constexpr netsim::DayIndex kNoPendingReads =
      std::numeric_limits<netsim::DayIndex>::max();
  std::vector<std::pair<netsim::DayIndex, std::uint32_t>> ready_order;
  ready_order.reserve(result.events.size());
  for (const auto& batch : telescope::group_events_by_day(result.events)) {
    for (const std::uint32_t idx : batch.event_indices) {
      ready_order.emplace_back(batch.day, idx);
    }
  }
  std::vector<netsim::DayIndex> min_first_read(ready_order.size() + 1,
                                               kNoPendingReads);
  for (std::size_t i = ready_order.size(); i-- > 0;) {
    const auto& ev = result.events[ready_order[i].second];
    min_first_read[i] =
        std::min(min_first_read[i + 1], ev.start_time().day() - 1);
  }

  // Per-event output slots, concatenated in canonical order at the end —
  // the same assembly the materialized run's ordered reduction performs.
  const core::ResilienceClassifier classifier(world.registry, world.census,
                                              world.routes, world.orgs);
  core::JoinPipeline pipeline(world.registry, result.store, classifier,
                              config.join);
  std::vector<std::vector<core::NssetAttackEvent>> slots(result.events.size());
  core::JoinStats stats;
  stats.total_events = result.events.size();
  core::JoinPipeline::BaselineCache baselines;
  std::size_t next_ready = 0;

  const auto join_ready_through = [&](netsim::DayIndex day) {
    while (next_ready < ready_order.size() &&
           ready_order[next_ready].first <= day) {
      const std::uint32_t idx = ready_order[next_ready].second;
      pipeline.join_event(result.events[idx], slots[idx], stats, &baselines);
      ++next_ready;
    }
  };

  // Retirement: evict (and, when persisting, append to the store columns)
  // every day strictly below min(watermark, d - window_days + 1). The
  // watermark alone guarantees no pending join loses data; window_days
  // only delays eviction, so any value >= 1 yields identical output.
  netsim::DayIndex last_threshold = std::numeric_limits<netsim::DayIndex>::min();
  std::size_t retired_days = 0;
  const auto retire_epochs = [&](netsim::DayIndex threshold) {
    if (threshold <= last_threshold) return;
    last_threshold = threshold;
    const auto retired = result.store.retire_days_below(threshold);
    if (writer) {
      for (const auto& [key, agg] : retired.daily) {
        daily_columns->append(key, agg);
      }
      for (const auto& [key, agg] : retired.window) {
        window_columns->append(key, agg);
      }
      for (const auto& [day, ip] : retired.ns_seen) {
        ns_seen_columns->append(day, ip);
      }
    }
    while (retired_days < plan_days.size() &&
           plan_days[retired_days] < threshold) {
      ++retired_days;
    }
    if (observer) {
      observer->pipeline.stream_retired_days.set(
          static_cast<double>(retired_days));
    }
  };

  // ---- Stage wiring. Three stages connected by bounded channels:
  //
  //   plan producer --SweepTask--> sweep stage --SweptDay--> fold/join
  //
  // The sweep stage is the only thread driving the worker pool (one
  // parallel region at a time); the fold/join consumer runs here on the
  // calling thread so the store, join state and writer stay single-
  // threaded. Every stage closes its output channel on all exits —
  // including unwinds — so a dying stage drains the others instead of
  // deadlocking them; Stage::join() then rethrows the original error.
  exec::Channel<SweepTask> task_channel(options.channel_capacity);
  exec::Channel<SweptDay> swept_channel(options.channel_capacity);

  exec::Stage plan_stage("stream.plan", [&](exec::StageContext& ctx) {
    try {
      obs::ScopedSpan span(tracer, "stream.plan");
      for (const auto& [day, domains] : plan.days) {
        SweepTask task;
        task.day = day;
        task.domains = domains.sorted_keys();
        if (!task_channel.push(std::move(task))) break;  // consumer died
        ctx.tick();
        if (observer) {
          observer->pipeline.stream_plan_queue_depth.set(
              static_cast<double>(task_channel.depth()));
        }
      }
    } catch (...) {
      task_channel.close();
      throw;
    }
    task_channel.close();
  });

  openintel::SweeperParams sp;
  sp.resolver = config.resolver;
  sp.model = config.model;
  sp.seed = config.sweep_seed;
  const openintel::Sweeper sweeper(world.registry, result.workload.schedule,
                                   sp);
  exec::Stage sweep_stage("stream.sweep", [&](exec::StageContext& ctx) {
    try {
      obs::ScopedSpan span(tracer, "stream.sweep");
      std::uint64_t swept = 0;
      while (auto task = task_channel.pop()) {
        obs::ScopedSpan day_span(tracer, "sweep.day");
        day_span.arg("day", static_cast<std::int64_t>(task->day));
        day_span.set_items(task->domains.size());
        SweptDay out;
        out.day = task->day;
        // Parallel across domains within the day; the batch sink runs on
        // this thread in shard (= domain) order, so replaying the batches
        // in order downstream folds the store bit-identically to the
        // materialized driver's in-place add_batch calls.
        sweeper.sweep_domains_batched(
            task->day, task->domains, exec::global_pool(),
            [&out](std::span<const openintel::Measurement> batch) {
              out.batches.emplace_back(batch.begin(), batch.end());
            });
        for (const auto& batch : out.batches) swept += batch.size();
        if (!swept_channel.push(std::move(out))) break;  // consumer died
        ctx.tick();
        // Queue depths refresh at the stage boundary too, so the sampler
        // sees time-resolved depth even while the fold consumer is busy.
        if (observer) {
          observer->pipeline.stream_plan_queue_depth.set(
              static_cast<double>(task_channel.depth()));
          observer->pipeline.stream_sweep_queue_depth.set(
              static_cast<double>(swept_channel.depth()));
        }
      }
      span.set_items(swept);
    } catch (...) {
      task_channel.close();  // unblock the producer's push
      swept_channel.close();
      throw;
    }
    swept_channel.close();
  });

  // Progress sources for the stall watchdog and the `progress.*` telemetry
  // series: both stages, both channels (with queue-depth detail), the fold
  // consumer, and the shared worker pool. Registered only when an observer
  // is installed; all referenced state outlives these scoped handles.
  obs::ProgressRegistry* progress_registry =
      observer ? &observer->progress_sources() : nullptr;
  std::atomic<std::uint64_t> fold_batches{0};
  const obs::ScopedProgressSource plan_source(
      progress_registry, "stream.plan",
      [context = plan_stage.context()] { return context->progress(); });
  const obs::ScopedProgressSource sweep_source(
      progress_registry, "stream.sweep",
      [context = sweep_stage.context()] { return context->progress(); });
  const obs::ScopedProgressSource task_channel_source(
      progress_registry, "channel.tasks",
      [&task_channel] { return task_channel.progress(); },
      [&task_channel] {
        return "depth " + std::to_string(task_channel.depth()) + "/" +
               std::to_string(task_channel.capacity());
      });
  const obs::ScopedProgressSource swept_channel_source(
      progress_registry, "channel.swept",
      [&swept_channel] { return swept_channel.progress(); },
      [&swept_channel] {
        return "depth " + std::to_string(swept_channel.depth()) + "/" +
               std::to_string(swept_channel.capacity());
      });
  const obs::ScopedProgressSource fold_source(
      progress_registry, "stream.fold",
      [&fold_batches] { return fold_batches.load(std::memory_order_relaxed); });
  const obs::ScopedProgressSource pool_source(
      progress_registry, "exec.pool",
      [] { return exec::global_pool().progress(); });

  // ---- Fold/join consumer (this thread).
  const std::uint64_t days_total = plan_days.size();
  std::uint64_t days_done = 0;
  try {
    obs::ScopedSpan fold_span(tracer, "stream.fold");
    // Events whose last day precedes the first plan day read nothing the
    // sweep will ever write; join them against the empty store up front.
    join_ready_through((plan_days.empty() ? kNoPendingReads
                                          : plan_days.front()) -
                       1);
    while (auto day = swept_channel.pop()) {
      for (const auto& batch : day->batches) {
        result.store.add_batch(
            std::span<const openintel::Measurement>(batch), retention);
        result.swept_measurements += batch.size();
        fold_batches.fetch_add(1, std::memory_order_relaxed);
      }
      ++days_done;
      const netsim::DayIndex next_plan_day =
          days_done < plan_days.size() ? plan_days[days_done]
                                       : kNoPendingReads;
      join_ready_through(next_plan_day - 1);

      const netsim::DayIndex watermark = min_first_read[next_ready];
      retire_epochs(
          std::min(watermark, day->day - options.window_days + 1));

      if (observer) {
        observer->pipeline.run_days_swept.set(static_cast<double>(days_done));
        observer->pipeline.stream_plan_queue_depth.set(
            static_cast<double>(task_channel.depth()));
        observer->pipeline.stream_sweep_queue_depth.set(
            static_cast<double>(swept_channel.depth()));
        observer->pipeline.stream_watermark_day.set(static_cast<double>(
            watermark == kNoPendingReads ? day->day : watermark));
        obs::ProgressEvent progress;
        progress.stage = "sweep";
        progress.day = day->day;
        progress.days_done = days_done;
        progress.days_total = days_total;
        progress.measurements = result.swept_measurements;
        progress.events = result.events.size();
        const double elapsed_s =
            static_cast<double>(total.elapsed_ns()) / 1e9;
        progress.sweep_rate_per_s =
            elapsed_s > 0.0
                ? static_cast<double>(result.swept_measurements) / elapsed_s
                : 0.0;
        observer->emit_progress(progress, days_done == days_total);
      }
    }
    fold_span.set_items(result.swept_measurements);
  } catch (...) {
    // Unblock both stages before unwinding (the Stage destructors join).
    task_channel.close();
    swept_channel.close();
    throw;
  }
  plan_stage.join();   // rethrows a producer failure
  sweep_stage.join();  // rethrows a sweep failure
  if (observer) {
    observer->pipeline.run_store_measurements.set(
        static_cast<double>(result.swept_measurements));
  }

  // Final drain: every plan day is folded, so everything left is ready,
  // and afterwards nothing pins any epoch — retire the whole remnant
  // (sweeps only write plan days, so last plan day + 1 clears the store).
  join_ready_through(kNoPendingReads - 1);
  if (!plan_days.empty()) retire_epochs(plan_days.back() + 1);

  // Assemble per-event slots in canonical order — byte-for-byte the
  // ordered reduction of the materialized join — then run the shared
  // merge/stats tail.
  {
    obs::ScopedSpan span(tracer, "join");
    std::size_t total_out = 0;
    for (const auto& slot : slots) total_out += slot.size();
    std::vector<core::NssetAttackEvent> assembled;
    assembled.reserve(total_out);
    for (auto& slot : slots) {
      for (auto& ev : slot) assembled.push_back(std::move(ev));
    }
    result.joined = pipeline.finalize(std::move(assembled), stats);
    result.join_stats = pipeline.stats();
    span.set_items(result.joined.size());
  }
  if (observer) {
    obs::ProgressEvent progress;
    progress.stage = "join";
    progress.days_done = days_total;
    progress.days_total = days_total;
    progress.measurements = result.swept_measurements;
    progress.events = result.events.size();
    progress.joined = result.joined.size();
    observer->emit_progress(progress, /*force=*/true);
  }

  if (writer) {
    obs::ScopedSpan span(tracer, "store.write");
    daily_columns->flush_to(*writer);
    window_columns->flush_to(*writer);
    ns_seen_columns->flush_to(*writer);
    store::write_joined_events(*writer, result.joined);
    write_result_meta(*writer, result.workload.schedule.size(),
                      result.feed_records, result.events.size(),
                      result.joined.size(), result.swept_measurements,
                      result.join_stats);
    writer->finish();
    result.store_bytes = writer->bytes_written();
    span.set_items(writer->column_count());
    if (observer) {
      observer->pipeline.store_bytes_written.set(
          static_cast<double>(result.store_bytes));
    }
  }
  return result;
}

StoredRun load_run(const std::string& path, bool use_mmap) {
  obs::Observer* observer = obs::Observer::installed();
  obs::ScopedSpan span(observer ? &observer->tracer() : nullptr, "store.read");
  const auto load_start = std::chrono::steady_clock::now();

  const store::Reader reader(
      path, use_mmap ? store::ReadMode::Mapped : store::ReadMode::Buffered);

  StoredRun run;
  LongitudinalConfig& cfg = run.config;
  cfg.workload.model = cfg.model;

  WorldParams& w = cfg.world;
  w.seed = meta_u64(reader, "world.seed");
  w.provider_count =
      static_cast<std::uint32_t>(meta_u64(reader, "world.provider_count"));
  w.domain_count =
      static_cast<std::uint32_t>(meta_u64(reader, "world.domain_count"));
  w.size_exponent = meta_f64(reader, "world.size_exponent");
  w.anycast_recall = meta_f64(reader, "world.anycast_recall");
  w.open_resolver_misconfigs = static_cast<std::uint32_t>(
      meta_u64(reader, "world.open_resolver_misconfigs"));
  w.single_ns_share = meta_f64(reader, "world.single_ns_share");
  w.lame_ns_share = meta_f64(reader, "world.lame_ns_share");
  w.capacity_base_pps = meta_f64(reader, "world.capacity_base_pps");
  w.capacity_exponent = meta_f64(reader, "world.capacity_exponent");
  w.legit_pps_per_domain = meta_f64(reader, "world.legit_pps_per_domain");
  w.legit_pps_floor = meta_f64(reader, "world.legit_pps_floor");

  LongitudinalParams& wl = cfg.workload;
  wl.seed = meta_u64(reader, "workload.seed");
  wl.scale = meta_f64(reader, "workload.scale");
  wl.multivector_prob = meta_f64(reader, "workload.multivector_prob");
  wl.victim_reuse_prob = meta_f64(reader, "workload.victim_reuse_prob");
  wl.dns_port_intensity_boost =
      meta_f64(reader, "workload.dns_port_intensity_boost");
  wl.scripted_cases = meta_u64(reader, "workload.scripted_cases") != 0;

  telescope::InferenceParams& inf = cfg.inference;
  inf.min_packets_per_window = static_cast<std::uint32_t>(
      meta_u64(reader, "inference.min_packets_per_window"));
  inf.min_distinct_slash16 = static_cast<std::uint32_t>(
      meta_u64(reader, "inference.min_distinct_slash16"));
  inf.min_ppm = meta_f64(reader, "inference.min_ppm");
  inf.max_gap_windows =
      static_cast<std::uint32_t>(meta_u64(reader, "inference.max_gap_windows"));

  core::JoinParams& jp = cfg.join;
  jp.min_measured_domains = static_cast<std::uint32_t>(
      meta_u64(reader, "join.min_measured_domains"));
  jp.match_slash24 = meta_u64(reader, "join.match_slash24") != 0;
  jp.merge_concurrent = meta_u64(reader, "join.merge_concurrent") != 0;

  cfg.sweep_seed = meta_u64(reader, "run.sweep_seed");
  cfg.feed_seed = meta_u64(reader, "run.feed_seed");
  run.threads = static_cast<unsigned>(meta_u64(reader, "run.threads"));

  run.attacks = meta_u64(reader, "result.attacks");
  run.swept_measurements = meta_u64(reader, "result.swept_measurements");

  core::JoinStats& js = run.join_stats;
  js.total_events = meta_u64(reader, "stats.total_events");
  js.open_resolver_filtered = meta_u64(reader, "stats.open_resolver_filtered");
  js.non_dns = meta_u64(reader, "stats.non_dns");
  js.not_seen_day_before = meta_u64(reader, "stats.not_seen_day_before");
  js.below_measurement_floor =
      meta_u64(reader, "stats.below_measurement_floor");
  js.no_baseline = meta_u64(reader, "stats.no_baseline");
  js.joined = meta_u64(reader, "stats.joined");
  js.dns_events = meta_u64(reader, "stats.dns_events");

  // Every block checksum is verified up front so corruption fails loudly
  // before any analysis consumes decoded data. Verification is tracked
  // per block, so the decodes below never re-hash a block.
  reader.validate_all();

  run.feed = telescope::RSDoSFeed(cfg.inference, cfg.backscatter);
  run.feed.set_records(store::read_feed_records(reader));
  run.feed_records = run.feed.records().size();
  check_count(reader, "feed record", meta_u64(reader, "result.feed_records"),
              run.feed_records);

  // Stitched events are not stored: they are a deterministic function of
  // the records + inference params, so re-deriving them is both cheaper
  // and a consistency check against the stored count.
  run.events = run.feed.events();
  check_count(reader, "stitched event", meta_u64(reader, "result.events"),
              run.events.size());

  store::read_measurements(reader, run.store);
  run.store.set_total_measurements(run.swept_measurements);

  run.joined = store::read_joined_events(reader);
  check_count(reader, "joined event", meta_u64(reader, "result.joined"),
              run.joined.size());

  span.set_items(reader.columns().size());
  if (observer) {
    observer->pipeline.store_bytes_read.set(
        static_cast<double>(reader.file_size()));
    const double load_ns = static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - load_start)
            .count());
    if (load_ns > 0.0)
      observer->pipeline.store_read_MBps.set(
          static_cast<double>(reader.file_size()) * 1e3 / load_ns);
  }
  return run;
}

RejoinResult rejoin_from_store(const StoredRun& run) {
  obs::Observer* observer = obs::Observer::installed();
  obs::ScopedSpan span(observer ? &observer->tracer() : nullptr,
                       "store.rejoin");

  // The world is a pure function of its params, so the provenance meta is
  // enough to rebuild the registry/census/routes the join stage consults.
  const std::unique_ptr<World> world = build_world(run.config.world);
  const core::ResilienceClassifier classifier(world->registry, world->census,
                                              world->routes, world->orgs);
  core::JoinPipeline pipeline(world->registry, run.store, classifier,
                              run.config.join);
  RejoinResult result;
  result.joined = pipeline.run(run.events);
  result.stats = pipeline.stats();
  span.set_items(result.joined.size());
  return result;
}

bool rejoin_matches_store(const std::string& path, bool use_mmap,
                          const StoredRun& run, const RejoinResult& rejoin) {
  const store::Reader reader(
      path, use_mmap ? store::ReadMode::Mapped : store::ReadMode::Buffered);
  store::ColumnArena arena;
  const core::EventFrame frame = store::read_event_frame(reader, arena);
  return core::frame_equals_events(frame, rejoin.joined) &&
         rejoin.stats == run.join_stats;
}

StoreAnalysis analyze_store(const std::string& path, bool use_mmap) {
  obs::Observer* observer = obs::Observer::installed();
  obs::ScopedSpan span(observer ? &observer->tracer() : nullptr, "store.scan");

  const store::Reader reader(
      path, use_mmap ? store::ReadMode::Mapped : store::ReadMode::Buffered);

  StoreAnalysis a;
  a.world_seed = meta_u64(reader, "world.seed");
  a.domain_count =
      static_cast<std::uint32_t>(meta_u64(reader, "world.domain_count"));
  a.provider_count =
      static_cast<std::uint32_t>(meta_u64(reader, "world.provider_count"));
  a.workload_seed = meta_u64(reader, "workload.seed");
  a.workload_scale = meta_f64(reader, "workload.scale");
  a.sweep_seed = meta_u64(reader, "run.sweep_seed");
  a.feed_seed = meta_u64(reader, "run.feed_seed");
  a.threads = static_cast<unsigned>(meta_u64(reader, "run.threads"));
  a.attacks = meta_u64(reader, "result.attacks");
  a.feed_records = meta_u64(reader, "result.feed_records");
  a.events = meta_u64(reader, "result.events");
  a.joined = meta_u64(reader, "result.joined");
  a.swept_measurements = meta_u64(reader, "result.swept_measurements");
  a.file_bytes = reader.file_size();
  a.mapped = reader.mapped();

  check_count(reader, "joined event (footer)", a.joined,
              reader.dataset_rows("events"));
  check_count(reader, "feed record (footer)", a.feed_records,
              reader.dataset_rows("feed"));

  // The timed region is the data-plane read: every block of every
  // dataset decoded (or mapped through) exactly once, lazy CRC included.
  const auto scan_start = std::chrono::steady_clock::now();
  store::ColumnArena arena;
  store::scan_all(reader, arena);
  const core::EventFrame frame = store::read_event_frame(reader, arena);
  const auto scan_end = std::chrono::steady_clock::now();
  const double scan_ns = static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(scan_end -
                                                           scan_start)
          .count());
  if (scan_ns > 0.0)
    a.read_MBps = static_cast<double>(a.file_bytes) * 1e3 / scan_ns;

  a.impact = core::impact_summary_columnar(frame);
  a.failures = core::failure_summary_columnar(frame);
  a.duration_series = core::duration_impact_series_columnar(frame);
  a.by_anycast = core::impact_by_anycast_columnar(frame);
  a.monthly = core::monthly_joined_summary_columnar(frame);

  span.set_items(reader.columns().size());
  if (observer) {
    observer->pipeline.store_bytes_read.set(static_cast<double>(a.file_bytes));
    observer->pipeline.store_read_MBps.set(a.read_MBps);
  }
  return a;
}

}  // namespace ddos::scenario
