#include "scenario/driver.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <optional>
#include <string>

#include "exec/pool.h"
#include "obs/obs.h"
#include "store/dataset.h"
#include "store/reader.h"
#include "store/writer.h"
#include "util/flat_map.h"
#include "util/strings.h"

namespace ddos::scenario {

LongitudinalConfig default_longitudinal_config() {
  LongitudinalConfig cfg;
  cfg.workload.model = cfg.model;
  return cfg;
}

LongitudinalConfig small_longitudinal_config(std::uint64_t seed) {
  LongitudinalConfig cfg;
  cfg.world = small_world_params(seed);
  cfg.workload.seed = seed ^ 0x1234;
  cfg.workload.scale = 400.0;
  cfg.workload.model = cfg.model;
  cfg.sweep_seed = seed ^ 0x77;
  cfg.feed_seed = seed ^ 0x99;
  return cfg;
}

LongitudinalResult run_longitudinal(const LongitudinalConfig& config) {
  obs::Observer* observer = obs::Observer::installed();
  obs::Tracer* tracer = observer ? &observer->tracer() : nullptr;
  obs::ScopedSpan total(tracer, "run_longitudinal");

  LongitudinalResult result;
  {
    obs::ScopedSpan span(tracer, "world.build");
    result.world = build_world(config.world);
    span.set_items(result.world->registry.domain_count());
  }
  const World& world = *result.world;

  {
    obs::ScopedSpan span(tracer, "workload.generate");
    result.workload = generate_workload(world, config.workload);
    span.set_items(result.workload.schedule.size());
  }

  // Telescope: observe backscatter, infer the feed, stitch events.
  {
    obs::ScopedSpan span(tracer, "telescope.infer");
    result.feed = telescope::RSDoSFeed(config.inference, config.backscatter);
    result.feed.ingest(result.workload.schedule, result.darknet,
                       config.feed_seed);
    result.events = result.feed.events();
    span.set_items(result.events.size());
  }

  // ---- Derive sweep/retention sets from the inferred events.
  std::optional<obs::ScopedSpan> plan_span;
  plan_span.emplace(tracer, "sweep.plan");
  util::FlatSet<std::uint64_t> daily_keys;    // (nsset, day)
  util::FlatSet<std::uint64_t> window_keys;   // (nsset, window)
  util::FlatSet<std::uint64_t> ns_seen_keys;  // (ip, day)
  std::map<netsim::DayIndex, util::FlatSet<dns::DomainId>> sweep_plan;

  const auto daily_key = [](dns::NssetId nsset, netsim::DayIndex day) {
    return (static_cast<std::uint64_t>(nsset) << 32) |
           static_cast<std::uint32_t>(day);
  };
  const auto window_key = [](dns::NssetId nsset, netsim::WindowIndex w) {
    return (static_cast<std::uint64_t>(nsset) << 32) |
           static_cast<std::uint32_t>(w);
  };
  const auto ns_key = [](netsim::IPv4Addr ip, netsim::DayIndex day) {
    return (static_cast<std::uint64_t>(ip.value()) << 32) |
           static_cast<std::uint32_t>(day);
  };

  for (const auto& ev : result.events) {
    if (!world.registry.is_ns_ip(ev.victim)) continue;
    const netsim::DayIndex first_day = ev.start_time().day();
    const netsim::DayIndex last_day = (ev.end_time() - 1).day();
    ns_seen_keys.insert(ns_key(ev.victim, first_day - 1));
    // Also retain the attack day's own sighting so the same-day-join
    // ablation measures the method, not the retention policy.
    ns_seen_keys.insert(ns_key(ev.victim, first_day));
    for (const dns::NssetId nsset :
         world.registry.nssets_containing(ev.victim)) {
      daily_keys.insert(daily_key(nsset, first_day - 1));
      for (netsim::WindowIndex w = ev.start_window; w <= ev.end_window; ++w) {
        window_keys.insert(window_key(nsset, w));
      }
      const auto domains = world.registry.domains_of_nsset(nsset);
      for (netsim::DayIndex d = first_day - 1; d <= last_day; ++d) {
        auto& day_set = sweep_plan[d];
        for (const dns::DomainId dom : domains) day_set.insert(dom);
      }
    }
  }

  // Key-set-backed retention, resolved at compile time in the batched fold
  // loop (no std::function call per measurement — see
  // MeasurementStore::add_batch).
  struct PlanRetention {
    const util::FlatSet<std::uint64_t>& daily_keys;
    const util::FlatSet<std::uint64_t>& window_keys;
    const util::FlatSet<std::uint64_t>& ns_seen_keys;

    bool daily(dns::NssetId nsset, netsim::DayIndex day) const {
      return daily_keys.contains((static_cast<std::uint64_t>(nsset) << 32) |
                                 static_cast<std::uint32_t>(day));
    }
    bool window(dns::NssetId nsset, netsim::WindowIndex w) const {
      return window_keys.contains((static_cast<std::uint64_t>(nsset) << 32) |
                                  static_cast<std::uint32_t>(w));
    }
    bool ns_seen(netsim::IPv4Addr ip, netsim::DayIndex day) const {
      return ns_seen_keys.contains(
          (static_cast<std::uint64_t>(ip.value()) << 32) |
          static_cast<std::uint32_t>(day));
    }
  };
  const PlanRetention retention{daily_keys, window_keys, ns_seen_keys};

  std::uint64_t domains_planned = 0;
  for (const auto& [day, domains] : sweep_plan) {
    domains_planned += domains.size();
  }
  if (plan_span) {
    plan_span->set_items(domains_planned);
    plan_span->arg("days", static_cast<std::int64_t>(sweep_plan.size()));
  }
  plan_span.reset();
  if (observer) {
    observer->pipeline.run_domains_planned.set(
        static_cast<double>(domains_planned));
  }

  // ---- Sparse sweep.
  {
    obs::ScopedSpan sweep_span(tracer, "sweep");
    openintel::SweeperParams sp;
    sp.resolver = config.resolver;
    sp.model = config.model;
    sp.seed = config.sweep_seed;
    const openintel::Sweeper sweeper(world.registry, result.workload.schedule,
                                     sp);
    const std::uint64_t days_total = sweep_plan.size();
    std::uint64_t days_done = 0;
    std::vector<dns::DomainId> day_domains;
    for (const auto& [day, domains] : sweep_plan) {
      obs::ScopedSpan day_span(tracer, "sweep.day");
      day_span.arg("day", static_cast<std::int64_t>(day));
      day_span.set_items(domains.size());
      day_domains = domains.sorted_keys();
      // Parallel across domains within the day; the batch sink below runs
      // on this thread in shard (= domain) order, and the store's grouped
      // fold preserves per-key measurement order, so the resulting state
      // is bit-identical to per-measurement add() at any thread count.
      sweeper.sweep_domains_batched(
          day, day_domains, exec::global_pool(),
          [&result, &retention](std::span<const openintel::Measurement> batch) {
            result.store.add_batch(batch, retention);
            result.swept_measurements += batch.size();
          });
      ++days_done;
      if (observer) {
        observer->pipeline.run_days_swept.set(static_cast<double>(days_done));
        obs::ProgressEvent progress;
        progress.stage = "sweep";
        progress.day = day;
        progress.days_done = days_done;
        progress.days_total = days_total;
        progress.measurements = result.swept_measurements;
        progress.events = result.events.size();
        const double elapsed_s =
            static_cast<double>(total.elapsed_ns()) / 1e9;
        progress.sweep_rate_per_s =
            elapsed_s > 0.0
                ? static_cast<double>(result.swept_measurements) / elapsed_s
                : 0.0;
        observer->emit_progress(progress, days_done == days_total);
      }
    }
    sweep_span.set_items(result.swept_measurements);
  }
  if (observer) {
    observer->pipeline.run_store_measurements.set(
        static_cast<double>(result.swept_measurements));
  }

  // ---- Join.
  {
    obs::ScopedSpan span(tracer, "join");
    const core::ResilienceClassifier classifier(world.registry, world.census,
                                                world.routes, world.orgs);
    core::JoinPipeline pipeline(world.registry, result.store, classifier,
                                config.join);
    result.joined = pipeline.run(result.events);
    result.join_stats = pipeline.stats();
    span.set_items(result.joined.size());
  }
  if (observer) {
    obs::ProgressEvent progress;
    progress.stage = "join";
    progress.days_done = sweep_plan.size();
    progress.days_total = sweep_plan.size();
    progress.measurements = result.swept_measurements;
    progress.events = result.events.size();
    progress.joined = result.joined.size();
    observer->emit_progress(progress, /*force=*/true);
  }
  return result;
}

// ---- DRS persistence (generate/analyze stage split).

namespace {

// %.17g round-trips every finite double exactly (17 significant digits);
// the store's provenance must restore configs bit-for-bit.
std::string meta_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

std::uint64_t meta_u64(const store::Reader& reader, const std::string& key) {
  std::uint64_t out = 0;
  if (!util::parse_u64(reader.meta_value(key), out)) {
    throw store::StoreError(reader.path() + ": meta key '" + key +
                            "' is not an unsigned integer");
  }
  return out;
}

double meta_f64(const store::Reader& reader, const std::string& key) {
  double out = 0.0;
  if (!util::parse_double(reader.meta_value(key), out)) {
    throw store::StoreError(reader.path() + ": meta key '" + key +
                            "' is not a double");
  }
  return out;
}

void check_count(const store::Reader& reader, const std::string& what,
                 std::uint64_t stored, std::uint64_t got) {
  if (stored != got) {
    throw store::StoreError(reader.path() + ": " + what + " count mismatch (" +
                            std::to_string(got) + " decoded, provenance says " +
                            std::to_string(stored) +
                            ") — store and generating run disagree");
  }
}

}  // namespace

std::uint64_t save_run(const std::string& path,
                       const LongitudinalConfig& config, unsigned threads,
                       const LongitudinalResult& result) {
  obs::Observer* observer = obs::Observer::installed();
  obs::ScopedSpan span(observer ? &observer->tracer() : nullptr, "store.write");

  store::Writer writer(path);
  writer.add_meta("format.tool", "ddosrepro");

  const WorldParams& w = config.world;
  writer.add_meta("world.seed", std::to_string(w.seed));
  writer.add_meta("world.provider_count", std::to_string(w.provider_count));
  writer.add_meta("world.domain_count", std::to_string(w.domain_count));
  writer.add_meta("world.size_exponent", meta_double(w.size_exponent));
  writer.add_meta("world.anycast_recall", meta_double(w.anycast_recall));
  writer.add_meta("world.open_resolver_misconfigs",
                  std::to_string(w.open_resolver_misconfigs));
  writer.add_meta("world.single_ns_share", meta_double(w.single_ns_share));
  writer.add_meta("world.lame_ns_share", meta_double(w.lame_ns_share));
  writer.add_meta("world.capacity_base_pps", meta_double(w.capacity_base_pps));
  writer.add_meta("world.capacity_exponent", meta_double(w.capacity_exponent));
  writer.add_meta("world.legit_pps_per_domain",
                  meta_double(w.legit_pps_per_domain));
  writer.add_meta("world.legit_pps_floor", meta_double(w.legit_pps_floor));

  const LongitudinalParams& wl = config.workload;
  writer.add_meta("workload.seed", std::to_string(wl.seed));
  writer.add_meta("workload.scale", meta_double(wl.scale));
  writer.add_meta("workload.multivector_prob", meta_double(wl.multivector_prob));
  writer.add_meta("workload.victim_reuse_prob",
                  meta_double(wl.victim_reuse_prob));
  writer.add_meta("workload.dns_port_intensity_boost",
                  meta_double(wl.dns_port_intensity_boost));
  writer.add_meta("workload.scripted_cases", wl.scripted_cases ? "1" : "0");

  const telescope::InferenceParams& inf = config.inference;
  writer.add_meta("inference.min_packets_per_window",
                  std::to_string(inf.min_packets_per_window));
  writer.add_meta("inference.min_distinct_slash16",
                  std::to_string(inf.min_distinct_slash16));
  writer.add_meta("inference.min_ppm", meta_double(inf.min_ppm));
  writer.add_meta("inference.max_gap_windows",
                  std::to_string(inf.max_gap_windows));

  const core::JoinParams& jp = config.join;
  writer.add_meta("join.min_measured_domains",
                  std::to_string(jp.min_measured_domains));
  writer.add_meta("join.match_slash24", jp.match_slash24 ? "1" : "0");
  writer.add_meta("join.merge_concurrent", jp.merge_concurrent ? "1" : "0");

  writer.add_meta("run.sweep_seed", std::to_string(config.sweep_seed));
  writer.add_meta("run.feed_seed", std::to_string(config.feed_seed));
  writer.add_meta("run.threads", std::to_string(threads));

  writer.add_meta("result.attacks",
                  std::to_string(result.workload.schedule.size()));
  writer.add_meta("result.feed_records",
                  std::to_string(result.feed.records().size()));
  writer.add_meta("result.events", std::to_string(result.events.size()));
  writer.add_meta("result.joined", std::to_string(result.joined.size()));
  writer.add_meta("result.swept_measurements",
                  std::to_string(result.swept_measurements));

  const core::JoinStats& js = result.join_stats;
  writer.add_meta("stats.total_events", std::to_string(js.total_events));
  writer.add_meta("stats.open_resolver_filtered",
                  std::to_string(js.open_resolver_filtered));
  writer.add_meta("stats.non_dns", std::to_string(js.non_dns));
  writer.add_meta("stats.not_seen_day_before",
                  std::to_string(js.not_seen_day_before));
  writer.add_meta("stats.below_measurement_floor",
                  std::to_string(js.below_measurement_floor));
  writer.add_meta("stats.no_baseline", std::to_string(js.no_baseline));
  writer.add_meta("stats.joined", std::to_string(js.joined));
  writer.add_meta("stats.dns_events", std::to_string(js.dns_events));

  store::write_feed_records(writer, result.feed.records());
  store::write_measurements(writer, result.store);
  store::write_joined_events(writer, result.joined);

  writer.finish();
  const std::uint64_t bytes = writer.bytes_written();
  span.set_items(writer.column_count());
  if (observer) {
    observer->pipeline.store_bytes_written.set(static_cast<double>(bytes));
  }
  return bytes;
}

StoredRun load_run(const std::string& path) {
  obs::Observer* observer = obs::Observer::installed();
  obs::ScopedSpan span(observer ? &observer->tracer() : nullptr, "store.read");

  const store::Reader reader(path);

  StoredRun run;
  LongitudinalConfig& cfg = run.config;
  cfg.workload.model = cfg.model;

  WorldParams& w = cfg.world;
  w.seed = meta_u64(reader, "world.seed");
  w.provider_count =
      static_cast<std::uint32_t>(meta_u64(reader, "world.provider_count"));
  w.domain_count =
      static_cast<std::uint32_t>(meta_u64(reader, "world.domain_count"));
  w.size_exponent = meta_f64(reader, "world.size_exponent");
  w.anycast_recall = meta_f64(reader, "world.anycast_recall");
  w.open_resolver_misconfigs = static_cast<std::uint32_t>(
      meta_u64(reader, "world.open_resolver_misconfigs"));
  w.single_ns_share = meta_f64(reader, "world.single_ns_share");
  w.lame_ns_share = meta_f64(reader, "world.lame_ns_share");
  w.capacity_base_pps = meta_f64(reader, "world.capacity_base_pps");
  w.capacity_exponent = meta_f64(reader, "world.capacity_exponent");
  w.legit_pps_per_domain = meta_f64(reader, "world.legit_pps_per_domain");
  w.legit_pps_floor = meta_f64(reader, "world.legit_pps_floor");

  LongitudinalParams& wl = cfg.workload;
  wl.seed = meta_u64(reader, "workload.seed");
  wl.scale = meta_f64(reader, "workload.scale");
  wl.multivector_prob = meta_f64(reader, "workload.multivector_prob");
  wl.victim_reuse_prob = meta_f64(reader, "workload.victim_reuse_prob");
  wl.dns_port_intensity_boost =
      meta_f64(reader, "workload.dns_port_intensity_boost");
  wl.scripted_cases = meta_u64(reader, "workload.scripted_cases") != 0;

  telescope::InferenceParams& inf = cfg.inference;
  inf.min_packets_per_window = static_cast<std::uint32_t>(
      meta_u64(reader, "inference.min_packets_per_window"));
  inf.min_distinct_slash16 = static_cast<std::uint32_t>(
      meta_u64(reader, "inference.min_distinct_slash16"));
  inf.min_ppm = meta_f64(reader, "inference.min_ppm");
  inf.max_gap_windows =
      static_cast<std::uint32_t>(meta_u64(reader, "inference.max_gap_windows"));

  core::JoinParams& jp = cfg.join;
  jp.min_measured_domains = static_cast<std::uint32_t>(
      meta_u64(reader, "join.min_measured_domains"));
  jp.match_slash24 = meta_u64(reader, "join.match_slash24") != 0;
  jp.merge_concurrent = meta_u64(reader, "join.merge_concurrent") != 0;

  cfg.sweep_seed = meta_u64(reader, "run.sweep_seed");
  cfg.feed_seed = meta_u64(reader, "run.feed_seed");
  run.threads = static_cast<unsigned>(meta_u64(reader, "run.threads"));

  run.attacks = meta_u64(reader, "result.attacks");
  run.swept_measurements = meta_u64(reader, "result.swept_measurements");

  core::JoinStats& js = run.join_stats;
  js.total_events = meta_u64(reader, "stats.total_events");
  js.open_resolver_filtered = meta_u64(reader, "stats.open_resolver_filtered");
  js.non_dns = meta_u64(reader, "stats.non_dns");
  js.not_seen_day_before = meta_u64(reader, "stats.not_seen_day_before");
  js.below_measurement_floor =
      meta_u64(reader, "stats.below_measurement_floor");
  js.no_baseline = meta_u64(reader, "stats.no_baseline");
  js.joined = meta_u64(reader, "stats.joined");
  js.dns_events = meta_u64(reader, "stats.dns_events");

  // Every block checksum is verified up front so corruption fails loudly
  // before any analysis consumes decoded data.
  reader.validate_all();

  run.feed = telescope::RSDoSFeed(cfg.inference, cfg.backscatter);
  run.feed.set_records(store::read_feed_records(reader));
  check_count(reader, "feed record", meta_u64(reader, "result.feed_records"),
              run.feed.records().size());

  // Stitched events are not stored: they are a deterministic function of
  // the records + inference params, so re-deriving them is both cheaper
  // and a consistency check against the stored count.
  run.events = run.feed.events();
  check_count(reader, "stitched event", meta_u64(reader, "result.events"),
              run.events.size());

  store::read_measurements(reader, run.store);
  run.store.set_total_measurements(run.swept_measurements);

  run.joined = store::read_joined_events(reader);
  check_count(reader, "joined event", meta_u64(reader, "result.joined"),
              run.joined.size());

  span.set_items(reader.columns().size());
  if (observer) {
    observer->pipeline.store_bytes_read.set(
        static_cast<double>(reader.file_size()));
  }
  return run;
}

RejoinResult rejoin_from_store(const StoredRun& run) {
  obs::Observer* observer = obs::Observer::installed();
  obs::ScopedSpan span(observer ? &observer->tracer() : nullptr,
                       "store.rejoin");

  // The world is a pure function of its params, so the provenance meta is
  // enough to rebuild the registry/census/routes the join stage consults.
  const std::unique_ptr<World> world = build_world(run.config.world);
  const core::ResilienceClassifier classifier(world->registry, world->census,
                                              world->routes, world->orgs);
  core::JoinPipeline pipeline(world->registry, run.store, classifier,
                              run.config.join);
  RejoinResult result;
  result.joined = pipeline.run(run.events);
  result.stats = pipeline.stats();
  span.set_items(result.joined.size());
  return result;
}

}  // namespace ddos::scenario
