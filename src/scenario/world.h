// Synthetic DNS hosting world. The paper measures the production Internet
// through OpenINTEL and CAIDA datasets; those are proprietary, so this
// generator builds a population with the same structural properties:
//
//   * heavy-tailed provider sizes (a few providers host a large share of
//     domains; the biggest hosts ~5% — mirroring the ~10M-domain peaks on
//     a ~217M namespace in Fig. 5);
//   * deployment styles stratified by provider size: large providers run
//     anycast, small ones run unicast on a single /24 (cf. §6.6 and the
//     anycast-adoption characterisation of Sommese et al. 2021);
//   * server/site capacity grows sublinearly with hosted-domain count
//     (big providers over-provision), which produces the paper's central
//     finding that attack intensity does not predict impact (Fig. 9);
//   * a small population of misconfigured domains whose NS records point
//     at public open resolvers (8.8.8.8, 8.8.4.4, 1.1.1.1) — the Table 5
//     artefact the paper filters;
//   * named real-world organisations (Google, Cloudflare, TransIP, NForce
//     B.V., ...) occupy the size ranks their role in the paper implies, so
//     leaderboard benches reproduce recognisable rows.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "anycast/census.h"
#include "dns/registry.h"
#include "netsim/ipv4.h"
#include "netsim/rng.h"
#include "topology/as_registry.h"
#include "topology/prefix_table.h"

namespace ddos::scenario {

enum class DeployStyle : std::uint8_t {
  UnicastSinglePrefix,  // all NS in one /24 — the mil.ru anti-pattern
  UnicastMultiPrefix,   // unicast, several /24s (TransIP-style)
  UnicastMultiAS,       // unicast across providers
  PartialAnycast,       // some NS anycast, some unicast
  FullAnycast,          // all NS anycast
};
const char* to_string(DeployStyle s);

struct Provider {
  std::string name;
  std::vector<topology::Asn> asns;
  DeployStyle style = DeployStyle::UnicastSinglePrefix;
  std::vector<netsim::IPv4Addr> ns_ips;
  std::uint64_t domains_hosted = 0;
  double site_capacity_pps = 0.0;  // representative per-site capacity
  /// Cloud organisation whose address space hosts this provider's
  /// nameservers ("" when self-hosted). Attacks on such deployments are
  /// attributed to the cloud org via prefix2as, as in the paper.
  std::string hosted_on;
};

struct WorldParams {
  std::uint64_t seed = 42;
  std::uint32_t provider_count = 1200;
  std::uint32_t domain_count = 120'000;
  /// Rank-weight exponent for provider sizes (w_i = rank^-exponent);
  /// 0.85 puts ~5-6% of domains on the largest provider.
  double size_exponent = 0.85;
  /// Census detection probability per anycast /24 (lower-bound knob, §3.3).
  double anycast_recall = 0.85;
  /// Misconfigured domains pointing NS records at public resolvers.
  std::uint32_t open_resolver_misconfigs = 150;
  /// Share of domains violating RFC 1034's two-nameserver minimum.
  double single_ns_share = 0.015;
  /// Share of domains carrying a lame NS entry (an address with no server
  /// behind it — Akiwate et al. 2020).
  double lame_ns_share = 0.004;
  /// Site capacity = base * (1 + hosted_domains)^exponent * jitter.
  double capacity_base_pps = 18e3;
  double capacity_exponent = 0.40;
  /// Legitimate query load folded into utilisation.
  double legit_pps_per_domain = 0.02;
  double legit_pps_floor = 100.0;
};

struct World {
  WorldParams params;
  dns::DnsRegistry registry;
  topology::PrefixTable routes;
  topology::AsRegistry orgs;
  anycast::AnycastCensus census;
  std::vector<Provider> providers;
  std::vector<netsim::IPv4Addr> open_resolver_ips;

  /// Non-DNS victim space: synthetic "rest of the Internet" prefixes used
  /// as targets for the ~98-99% of attacks that do not hit DNS (Table 3).
  std::vector<netsim::Prefix> other_prefixes;

  /// A random host address in the non-DNS space.
  netsim::IPv4Addr random_other_ip(netsim::Rng& rng) const;

  /// Provider index by organisation name; -1 when absent.
  int provider_index(const std::string& name) const;

  /// Any NS IP of a named provider (first one); throws if absent.
  netsim::IPv4Addr ns_ip_of(const std::string& provider_name,
                            std::size_t idx = 0) const;
};

/// Build the world. Deterministic in params.seed.
std::unique_ptr<World> build_world(const WorldParams& params);

/// Small-world preset for unit tests (fast to build and sweep).
WorldParams small_world_params(std::uint64_t seed = 7);

/// Well-known organisations assigned to the top size ranks, in rank order.
/// Index 0 is the largest provider.
const std::vector<std::string>& famous_provider_names();

/// The Table-6 organisations (small-to-medium providers hit hardest).
const std::vector<std::string>& table6_provider_names();

}  // namespace ddos::scenario
