// Longitudinal attack workload — seventeen months of synthetic DDoS
// activity whose aggregate statistics follow the paper's Table 3 exactly
// (per-month totals and DNS shares, divided by a scale factor) and whose
// per-attack attributes follow the reported marginals:
//
//   * port/protocol mix of §6.2 (80.7% single-port; TCP 90.4% of those;
//     top ports 80, 53, 443; a third of UDP attacks on 53);
//   * bimodal intensity (telescope-ppm modes near 50 and 6000, §6.4) with
//     a heavy upper tail;
//   * bimodal duration (modes at 15 minutes and 1 hour, §6.5), long
//     attacks skewing weak;
//   * port-53 attacks carrying an "application-aware" intensity premium,
//     which makes them over-represented among harmful attacks (§6.3.1)
//     without any hand-labelling;
//   * victim reuse tuned so unique-IP/attack ratios match Table 1;
//   * occasional invisible companion vectors (multi-vector attacks the
//     telescope cannot see, §4.3).
//
// On top of the statistical population, scripted case events reproduce the
// identifiable incidents of §6: the eight >per-cent-of-namespace blasts of
// Fig. 5, the Table 6 per-organisation impact ladder, nic.ru's complete
// failure, Euskaltel's 83% failure, Contabo's 19-hour outlier, the Apple
// Russia and Beeline attacks, the Unified Layer shared-IP nuisance flood
// and the public-resolver attack volumes of Table 5.
#pragma once

#include <cstdint>
#include <vector>

#include "attack/schedule.h"
#include "dns/load_model.h"
#include "scenario/world.h"

namespace ddos::scenario {

struct MonthSpec {
  int year = 0;
  int month = 0;
  std::uint32_t total_attacks = 0;  // Table 3 "Total Attacks"
  std::uint32_t dns_attacks = 0;    // Table 3 "#DNS Attacks"
};

/// The seventeen rows of Table 3 (hard-coded from the paper).
const std::vector<MonthSpec>& paper_monthly_totals();

struct LongitudinalParams {
  std::uint64_t seed = 2022;
  /// Divide the paper's attack counts by this factor (30 -> ~135K attacks).
  double scale = 30.0;
  double multivector_prob = 0.10;
  /// Probability a non-DNS attack re-targets an already-attacked IP
  /// (0.75 reproduces Table 1's 1.02M unique IPs over 4.04M attacks).
  double victim_reuse_prob = 0.75;
  /// Intensity premium for port-53 attacks (application-aware attackers).
  double dns_port_intensity_boost = 1.8;
  bool scripted_cases = true;
  dns::LoadModelParams model;  // used to calibrate scripted impacts
};

struct Workload {
  attack::AttackSchedule schedule;
  std::uint64_t dns_attacks = 0;
  std::uint64_t other_attacks = 0;
  std::uint64_t scripted_attacks = 0;
  std::uint64_t invisible_vectors = 0;
};

/// Generate the workload against a built world. Deterministic in
/// params.seed. Also configures shared-/24-link capacities on the schedule.
Workload generate_workload(const World& world,
                           const LongitudinalParams& params);

/// Attack rate (pps at the victim) that drives one nameserver to an
/// expected Impact_on_RTT of `target_impact`, inverting the queueing and
/// retry model. Used to script the Table 6 ladder.
double calibrate_attack_pps(const dns::Nameserver& ns, double target_impact,
                            const dns::LoadModelParams& model,
                            double attempt_timeout_ms = 1500.0,
                            int max_attempts = 3);

/// Expected Impact_on_RTT of queries against a single nameserver at
/// utilisation `rho` (answered queries only, retries included) — the
/// forward model inverted by calibrate_attack_pps.
double expected_impact_at(double rho, const dns::LoadModelParams& model,
                          double base_rtt_ms, double attempt_timeout_ms,
                          int max_attempts);

/// The reported per-event impact is the *peak* over the attack's 5-minute
/// windows; with few measurements per window the peak rides the latency
/// jitter's upper tail. This returns the expected peak/mean ratio for
/// `expected_samples` independent log-normal draws (sigma of the
/// under-load jitter), used to de-bias the calibration target.
double peak_of_samples_correction(double expected_samples,
                                  double sigma = 0.5);

}  // namespace ddos::scenario
