#include "scenario/plan.h"

#include <charconv>
#include <limits>
#include <stdexcept>
#include <system_error>

namespace ddos::scenario {

SweepPlan derive_sweep_plan(const World& world,
                            const std::vector<telescope::RSDoSEvent>& events,
                            obs::Tracer* tracer, obs::Observer* observer) {
  obs::ScopedSpan plan_span(tracer, "sweep.plan");
  SweepPlan plan;

  const auto daily_key = [](dns::NssetId nsset, netsim::DayIndex day) {
    return (static_cast<std::uint64_t>(nsset) << 32) |
           static_cast<std::uint32_t>(day);
  };
  const auto window_key = [](dns::NssetId nsset, netsim::WindowIndex w) {
    return (static_cast<std::uint64_t>(nsset) << 32) |
           static_cast<std::uint32_t>(w);
  };
  const auto ns_key = [](netsim::IPv4Addr ip, netsim::DayIndex day) {
    return (static_cast<std::uint64_t>(ip.value()) << 32) |
           static_cast<std::uint32_t>(day);
  };

  for (const auto& ev : events) {
    if (!world.registry.is_ns_ip(ev.victim)) continue;
    const netsim::DayIndex first_day = ev.start_time().day();
    const netsim::DayIndex last_day = (ev.end_time() - 1).day();
    plan.ns_seen_keys.insert(ns_key(ev.victim, first_day - 1));
    // Also retain the attack day's own sighting so the same-day-join
    // ablation measures the method, not the retention policy.
    plan.ns_seen_keys.insert(ns_key(ev.victim, first_day));
    for (const dns::NssetId nsset :
         world.registry.nssets_containing(ev.victim)) {
      plan.daily_keys.insert(daily_key(nsset, first_day - 1));
      for (netsim::WindowIndex w = ev.start_window; w <= ev.end_window; ++w) {
        plan.window_keys.insert(window_key(nsset, w));
      }
      const auto domains = world.registry.domains_of_nsset(nsset);
      for (netsim::DayIndex d = first_day - 1; d <= last_day; ++d) {
        auto& day_set = plan.days[d];
        for (const dns::DomainId dom : domains) day_set.insert(dom);
      }
    }
  }

  for (const auto& [day, domains] : plan.days) {
    plan.domains_planned += domains.size();
  }
  plan_span.set_items(plan.domains_planned);
  plan_span.arg("days", static_cast<std::int64_t>(plan.days.size()));
  if (observer) {
    observer->pipeline.run_domains_planned.set(
        static_cast<double>(plan.domains_planned));
  }
  return plan;
}

// ---- shard partition.

namespace {

std::optional<ShardSpec> shard_error(std::string* error, std::string_view spec,
                                     const std::string& detail) {
  if (error != nullptr) {
    *error = "shard expects i/N — a zero-based shard index and the total "
             "shard count (two unsigned integers with i < N, e.g. 0/3), "
             "got '" +
             std::string(spec) + "': " + detail;
  }
  return std::nullopt;
}

}  // namespace

std::optional<ShardSpec> parse_shard(std::string_view spec,
                                     std::string* error) {
  const std::size_t slash = spec.find('/');
  if (slash == std::string_view::npos) {
    return shard_error(error, spec, "expected one '/' separator");
  }
  static constexpr const char* kFieldNames[2] = {"shard index", "shard count"};
  const std::string_view fields[2] = {spec.substr(0, slash),
                                      spec.substr(slash + 1)};
  std::uint32_t parts[2] = {0, 0};
  for (int i = 0; i < 2; ++i) {
    const std::string_view field = fields[i];
    if (field.empty()) {
      return shard_error(error, spec, std::string(kFieldNames[i]) + " is empty");
    }
    if (field.front() == '-') {
      return shard_error(error, spec, std::string(kFieldNames[i]) + " '" +
                                          std::string(field) + "' is negative");
    }
    const auto [ptr, ec] =
        std::from_chars(field.data(), field.data() + field.size(), parts[i]);
    if (ec == std::errc::result_out_of_range) {
      return shard_error(error, spec, std::string(kFieldNames[i]) + " '" +
                                          std::string(field) +
                                          "' overflows 32 bits");
    }
    if (ec != std::errc{} || ptr != field.data() + field.size()) {
      return shard_error(error, spec,
                         std::string(kFieldNames[i]) + " '" +
                             std::string(field) +
                             "' is not an unsigned integer");
    }
  }
  if (parts[1] == 0) {
    return shard_error(error, spec,
                       "shard count is zero; at least one shard is required");
  }
  if (parts[0] >= parts[1]) {
    return shard_error(
        error, spec,
        "shard index " + std::to_string(parts[0]) + " is out of range for " +
            std::to_string(parts[1]) +
            (parts[1] == 1 ? " shard" : " shards") + " (valid: 0.." +
            std::to_string(parts[1] - 1) + ")");
  }
  return ShardSpec{parts[0], parts[1]};
}

netsim::DayIndex event_final_day(const telescope::RSDoSEvent& ev) {
  return (ev.end_time() - 1).day();
}

std::vector<netsim::DayIndex> shard_day_cuts(const SweepPlan& plan,
                                             std::uint32_t count) {
  if (count == 0) {
    throw std::invalid_argument("shard_day_cuts: count must be >= 1");
  }
  constexpr netsim::DayIndex kLo = std::numeric_limits<netsim::DayIndex>::min();
  constexpr netsim::DayIndex kHi = std::numeric_limits<netsim::DayIndex>::max();

  std::vector<netsim::DayIndex> days;
  std::vector<std::uint64_t> prefix;  // prefix[j] = weight of the first j days
  days.reserve(plan.days.size());
  prefix.reserve(plan.days.size() + 1);
  prefix.push_back(0);
  for (const auto& [day, domains] : plan.days) {
    days.push_back(day);
    prefix.push_back(prefix.back() + domains.size());
  }
  const std::uint64_t total = prefix.back();

  std::vector<netsim::DayIndex> cuts(count + 1);
  cuts[0] = kLo;
  cuts[count] = kHi;
  for (std::uint32_t k = 1; k < count; ++k) {
    std::size_t j = 0;
    if (total > 0) {
      // Smallest day prefix carrying >= k/count of the planned sweeps.
      // 128-bit products: prefix sums can reach 2^40+ and count 2^32.
      while (static_cast<unsigned __int128>(prefix[j]) * count <
             static_cast<unsigned __int128>(total) * k) {
        ++j;
      }
    } else {
      j = (days.size() * k) / count;
    }
    cuts[k] = j < days.size() ? days[j] : kHi;
  }
  return cuts;
}

ShardBounds shard_bounds(const SweepPlan& plan, const ShardSpec& spec) {
  if (spec.count == 0 || spec.index >= spec.count) {
    throw std::invalid_argument("shard_bounds: need index < count, count >= 1");
  }
  const std::vector<netsim::DayIndex> cuts = shard_day_cuts(plan, spec.count);
  return ShardBounds{cuts[spec.index], cuts[spec.index + 1]};
}

std::pair<std::uint64_t, std::uint64_t> shard_feed_slice(
    std::uint64_t total_rows, const ShardSpec& spec) {
  return {total_rows * spec.index / spec.count,
          total_rows * (spec.index + 1) / spec.count};
}

}  // namespace ddos::scenario
