#include "scenario/transip.h"

#include <algorithm>
#include <cmath>

#include "core/impact.h"
#include "openintel/sweeper.h"
#include "telescope/darknet.h"

namespace ddos::scenario {

namespace {

using netsim::IPv4Addr;
using netsim::SimTime;

constexpr double kPacketBytes = 1408.0;  // volumetric estimate packet size

// Nameserver service addresses (synthetic stand-ins; the paper anonymises
// them as A, B, C). Three /24s, two sites (AMS, EHV), one ASN.
const IPv4Addr kNsA(61, 10, 1, 10);
const IPv4Addr kNsB(61, 10, 2, 10);
const IPv4Addr kNsC(61, 10, 3, 10);
constexpr topology::Asn kTransIpAsn = 20857;

// Victim-side flood rates chosen so the telescope observes the paper's
// Table 2 ppm values (ppm = pps / 341 * 60).
constexpr double kDecPpsA = 124e3;   // -> ~21.8K ppm
constexpr double kDecPpsB = 21.6e3;  // -> ~3.8K ppm
constexpr double kDecPpsC = 16.5e3;  // -> ~2.9K ppm
constexpr double kMarPpsA = 710e3;   // -> ~125K ppm
constexpr double kMarPpsB = 700e3;   // -> ~123K ppm
constexpr double kMarPpsC = 74e3;    // -> ~13K ppm

// Server capacities: sized so the December attack drives A close to (but
// not past) saturation — a ~10-25x inflation with few losses — while the
// 6x stronger March attack saturates A and B outright and degrades C,
// yielding the ~20% timeout rate of Fig. 3.
constexpr double kCapacityAB = 130e3;
constexpr double kCapacityC = 78.6e3;
// Fixed vantage base RTTs (NL to NL), so the replay is deterministic.
constexpr double kBaseRttAB = 17.0;
constexpr double kBaseRttC = 18.0;

struct Setup {
  dns::DnsRegistry registry;
  topology::PrefixTable routes;
  topology::AsRegistry orgs;
  attack::AttackSchedule schedule;
  std::uint64_t domains = 0;
  std::uint64_t nl_domains = 0;
  std::uint64_t third_party_web = 0;
};

void build_setup(Setup& s, const TransIPParams& params) {
  netsim::Rng rng(params.seed);

  s.orgs.add(topology::AsInfo{kTransIpAsn, "TransIP", "NL"});
  for (const auto& ip : {kNsA, kNsB, kNsC}) {
    s.routes.announce(netsim::Prefix(ip, 24), kTransIpAsn);
  }

  const auto add_ns = [&](IPv4Addr ip, const char* loc, double capacity,
                          double base_rtt, const char* host) {
    dns::Nameserver ns(ip, {dns::Site{loc, capacity, base_rtt, 1.0}}, host);
    ns.set_legit_pps(4e3);
    ns.set_home_country("NL");
    s.registry.add_nameserver(std::move(ns));
  };
  add_ns(kNsA, "AMS", kCapacityAB, kBaseRttAB, "ns0.transip.example");
  add_ns(kNsB, "AMS", kCapacityAB, kBaseRttAB, "ns1.transip.example");
  add_ns(kNsC, "EHV", kCapacityC, kBaseRttC, "ns2.transip.example");

  s.domains = static_cast<std::uint64_t>(776000.0 * params.scale);
  s.domains = std::max<std::uint64_t>(s.domains, 50);
  for (std::uint64_t d = 0; d < s.domains; ++d) {
    const bool nl = rng.chance(510.0 / 776.0);  // two-thirds .nl
    if (nl) ++s.nl_domains;
    if (rng.chance(0.27)) ++s.third_party_web;  // third-party web hosting
    char buf[32];
    std::snprintf(buf, sizeof(buf), "t%07llu.%s",
                  static_cast<unsigned long long>(d), nl ? "nl" : "com");
    s.registry.add_domain(dns::DomainName::must(buf), {kNsA, kNsB, kNsC});
  }

  // Shared upstream links per /24 — generous; the attacks here saturate
  // servers, not links.
  for (const auto& ip : {kNsA, kNsB, kNsC}) {
    s.schedule.set_link_capacity(ip, 5e6);
  }

  const auto flood = [&](IPv4Addr target, SimTime start, std::int64_t dur,
                         double pps, attack::SpoofType spoof) {
    attack::AttackSpec spec;
    spec.target = target;
    spec.start = start;
    spec.duration_s = dur;
    spec.peak_pps = pps;
    spec.protocol = attack::Protocol::TCP;
    spec.first_port = 53;
    spec.unique_ports = 1;
    spec.spoof = spoof;
    spec.steady = true;
    s.schedule.add(spec);
  };

  // --- December 2020: telescope-visible phase 2020-11-30 22:00 -> 00:00,
  // then an invisible vector keeps the pressure on until 08:00 (§5.1's
  // "attackers moved to a different kind of DDoS attack" hypothesis).
  const SimTime dec_vis_start = SimTime::from_utc(2020, 11, 30, 22, 0, 0);
  const SimTime dec_vis_end = SimTime::from_utc(2020, 12, 1, 0, 0, 0);
  const SimTime dec_effect_end = SimTime::from_utc(2020, 12, 1, 8, 0, 0);
  const std::int64_t vis_dur = dec_vis_end - dec_vis_start;
  const std::int64_t invis_dur = dec_effect_end - dec_vis_end;
  flood(kNsA, dec_vis_start, vis_dur, kDecPpsA, attack::SpoofType::RandomUniform);
  flood(kNsB, dec_vis_start, vis_dur, kDecPpsB, attack::SpoofType::RandomUniform);
  flood(kNsC, dec_vis_start, vis_dur, kDecPpsC, attack::SpoofType::RandomUniform);
  flood(kNsA, dec_vis_end, invis_dur, kDecPpsA, attack::SpoofType::Direct);
  flood(kNsB, dec_vis_end, invis_dur, kDecPpsB, attack::SpoofType::Direct);
  flood(kNsC, dec_vis_end, invis_dur, kDecPpsC, attack::SpoofType::Direct);

  // --- March 2021: stronger, all-visible; impairment window matches the
  // telescope's (TransIP had deployed IP-level scrubbing by then).
  const SimTime mar_start = SimTime::from_utc(2021, 3, 29, 14, 0, 0);
  const SimTime mar_end = SimTime::from_utc(2021, 3, 29, 20, 0, 0);
  const std::int64_t mar_dur = mar_end - mar_start;
  flood(kNsA, mar_start, mar_dur, kMarPpsA, attack::SpoofType::RandomUniform);
  flood(kNsB, mar_start, mar_dur, kMarPpsB, attack::SpoofType::RandomUniform);
  flood(kNsC, mar_start, mar_dur, kMarPpsC, attack::SpoofType::RandomUniform);
}

NsAttackMetrics metrics_for(const telescope::RSDoSFeed& feed,
                            const telescope::Darknet& darknet, IPv4Addr ip,
                            netsim::WindowIndex from,
                            netsim::WindowIndex to) {
  NsAttackMetrics m;
  m.ip = ip;
  std::uint64_t packets = 0;
  for (const auto& rec : feed.records()) {
    if (rec.victim != ip || rec.window < from || rec.window > to) continue;
    m.observed_ppm = std::max(m.observed_ppm, rec.max_ppm);
    packets += rec.packets;
  }
  const double pps = feed.extrapolate_pps(m.observed_ppm, darknet);
  m.inferred_gbps = pps * kPacketBytes * 8.0 / 1e9;
  const double telescope_addrs =
      static_cast<double>(darknet.address_count());
  m.attacker_ip_count =
      telescope_addrs *
      (1.0 - std::exp(-static_cast<double>(packets) / telescope_addrs));
  return m;
}

}  // namespace

TransIPResult run_transip(const TransIPParams& params) {
  Setup setup;
  build_setup(setup, params);

  TransIPResult result;
  result.domains_hosted = setup.domains;
  result.nl_share =
      static_cast<double>(setup.nl_domains) / static_cast<double>(setup.domains);
  result.third_party_web_share = static_cast<double>(setup.third_party_web) /
                                 static_cast<double>(setup.domains);
  result.dec_visible_start = SimTime::from_utc(2020, 11, 30, 22, 0, 0);
  result.dec_visible_end = SimTime::from_utc(2020, 12, 1, 0, 0, 0);
  result.dec_effect_end = SimTime::from_utc(2020, 12, 1, 8, 0, 0);
  result.mar_start = SimTime::from_utc(2021, 3, 29, 14, 0, 0);
  result.mar_end = SimTime::from_utc(2021, 3, 29, 20, 0, 0);

  // Telescope inference.
  const telescope::Darknet darknet = telescope::Darknet::ucsd_like();
  telescope::RSDoSFeed feed{telescope::InferenceParams{},
                            attack::BackscatterModelParams{}};
  feed.ingest(setup.schedule, darknet, params.seed ^ 0xFEED);

  for (std::size_t i = 0; i < 3; ++i) {
    const IPv4Addr ip = i == 0 ? kNsA : (i == 1 ? kNsB : kNsC);
    result.december[i] =
        metrics_for(feed, darknet, ip, result.dec_visible_start.window(),
                    result.dec_visible_end.window());
    result.march[i] = metrics_for(feed, darknet, ip,
                                  result.mar_start.window(),
                                  result.mar_end.window());
  }

  // OpenINTEL sweep of the attack-adjacent days.
  openintel::SweeperParams sp;
  sp.model = params.model;
  sp.seed = params.seed ^ 0x01;
  const openintel::Sweeper sweeper(setup.registry, setup.schedule, sp);
  openintel::MeasurementStore store;
  const std::vector<netsim::DayIndex> days = {
      // December window: Nov 29 (baseline) .. Dec 2.
      result.dec_visible_start.day() - 1, result.dec_visible_start.day(),
      result.dec_visible_start.day() + 1, result.dec_visible_start.day() + 2,
      // March window: Mar 28 (baseline) .. Mar 31.
      result.mar_start.day() - 1, result.mar_start.day(),
      result.mar_start.day() + 1, result.mar_start.day() + 2,
  };
  for (const netsim::DayIndex day : days) {
    sweeper.sweep_day(day, [&store](const openintel::Measurement& m) {
      store.add(m);
    });
  }

  // Hourly series around each attack (Fig. 2 / Fig. 3).
  const dns::NssetId nsset = setup.registry.nsset_of_domain(0);
  const auto build_series = [&](SimTime from, SimTime to, SimTime mark_from,
                                SimTime mark_to) {
    std::vector<SeriesPoint> series;
    for (SimTime t = from; t < to; t = t + netsim::kSecondsPerHour) {
      SeriesPoint pt;
      pt.time = t;
      pt.attack_marked = t >= mark_from && t < mark_to;
      const double baseline = store.daily_avg_rtt(nsset, t.day() - 1);
      openintel::Aggregate hour;
      for (netsim::WindowIndex w = t.window();
           w < t.window() + netsim::kSecondsPerHour / netsim::kSecondsPerWindow;
           ++w) {
        if (const auto* agg = store.window(nsset, w)) hour.merge(*agg);
      }
      if (baseline > 0.0) pt.impact_on_rtt = core::impact_on_rtt(hour, baseline);
      if (hour.measured > 0)
        pt.timeout_share =
            static_cast<double>(hour.timeout) / hour.measured;
      series.push_back(pt);
    }
    return series;
  };

  result.december_series = build_series(
      result.dec_visible_start - 12 * netsim::kSecondsPerHour,
      result.dec_effect_end + 16 * netsim::kSecondsPerHour,
      result.dec_visible_start, result.dec_visible_end);
  result.march_series = build_series(
      result.mar_start - 12 * netsim::kSecondsPerHour,
      result.mar_end + 16 * netsim::kSecondsPerHour, result.mar_start,
      result.mar_end);

  for (const auto& pt : result.december_series) {
    result.december_peak_impact =
        std::max(result.december_peak_impact, pt.impact_on_rtt);
    result.december_peak_timeout_share =
        std::max(result.december_peak_timeout_share, pt.timeout_share);
  }
  for (const auto& pt : result.march_series) {
    result.march_peak_impact =
        std::max(result.march_peak_impact, pt.impact_on_rtt);
    result.march_peak_timeout_share =
        std::max(result.march_peak_timeout_share, pt.timeout_share);
  }

  // Residual impairment: last hour after the visible December attack whose
  // impact still exceeds 3x baseline.
  SimTime last_impaired = result.dec_visible_end;
  for (const auto& pt : result.december_series) {
    if (pt.time >= result.dec_visible_end && pt.impact_on_rtt > 3.0)
      last_impaired = pt.time + netsim::kSecondsPerHour;
  }
  result.december_residual_hours =
      static_cast<double>(last_impaired - result.dec_visible_end) /
      netsim::kSecondsPerHour;
  return result;
}

}  // namespace ddos::scenario
