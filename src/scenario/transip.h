// TransIP case study (§5.1) — deterministic replay of the December 2020
// and March 2021 attacks against a large Dutch DNS/hosting provider that
// served ~776K domains (two-thirds .nl) from three *unicast* nameservers
// (A, B, C) on three /24s in two cities behind one ASN.
//
// Published attack parameters (Table 2) are reproduced by construction:
// victim-side rates are set so the telescope observes ~21.8K/3.8K/2.9K ppm
// in December and ~125K/123K/13K ppm in March. December's impairment
// outlives the telescope-visible attack by ~8 hours, modelled as the
// attackers switching to a telescope-invisible vector (one of the paper's
// two hypotheses); March's impairment window matches the telescope's,
// consistent with the scrubbing service TransIP reported deploying.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "attack/schedule.h"
#include "core/join.h"
#include "dns/load_model.h"
#include "dns/registry.h"
#include "netsim/simtime.h"
#include "openintel/storage.h"
#include "telescope/feed.h"
#include "topology/as_registry.h"
#include "topology/prefix_table.h"

namespace ddos::scenario {

struct TransIPParams {
  std::uint64_t seed = 5;
  /// Domain population scale: 1.0 replays the full ~776K domains the
  /// paper attributes to TransIP; tests use ~0.01.
  double scale = 1.0;
  dns::LoadModelParams model;
};

/// Table 2 row: per-nameserver telescope metrics for one attack.
struct NsAttackMetrics {
  netsim::IPv4Addr ip;
  double observed_ppm = 0.0;     // peak ppm at the telescope
  double inferred_gbps = 0.0;    // extrapolated volumetric estimate
  double attacker_ip_count = 0;  // distinct telescope addresses reached
};

/// One point of the Fig. 2 / Fig. 3 time series (hourly).
struct SeriesPoint {
  netsim::SimTime time;
  double impact_on_rtt = 0.0;   // vs previous-day baseline
  double timeout_share = 0.0;   // fraction of measurements timing out
  bool attack_marked = false;   // the figure's red-cross hours
};

struct TransIPResult {
  std::array<NsAttackMetrics, 3> december;
  std::array<NsAttackMetrics, 3> march;

  std::vector<SeriesPoint> december_series;  // Fig. 2 left
  std::vector<SeriesPoint> march_series;     // Fig. 2 right + Fig. 3

  double december_peak_impact = 0.0;
  double march_peak_impact = 0.0;
  double december_peak_timeout_share = 0.0;
  double march_peak_timeout_share = 0.0;

  /// Hours the December impairment outlived the telescope-visible attack.
  double december_residual_hours = 0.0;

  std::uint64_t domains_hosted = 0;       // ~776K at scale 1
  double nl_share = 0.0;                  // ~2/3 in the paper
  double third_party_web_share = 0.0;     // ~27% (§5.1.1)

  netsim::SimTime dec_visible_start, dec_visible_end, dec_effect_end;
  netsim::SimTime mar_start, mar_end;
};

TransIPResult run_transip(const TransIPParams& params);

}  // namespace ddos::scenario
