#include "scenario/russia.h"

#include <algorithm>
#include <unordered_set>

#include "attack/schedule.h"
#include "dns/registry.h"
#include "openintel/storage.h"
#include "openintel/sweeper.h"
#include "telescope/darknet.h"
#include "telescope/feed.h"

namespace ddos::scenario {

namespace {

using netsim::IPv4Addr;
using netsim::SimTime;

// mil.ru: three nameservers on ONE /24 (the §5.2.3 anti-pattern).
const IPv4Addr kMilNs1(77, 20, 5, 10);
const IPv4Addr kMilNs2(77, 20, 5, 11);
const IPv4Addr kMilNs3(77, 20, 5, 12);
// rzd.ru: three nameservers on TWO /24s.
const IPv4Addr kRdzNs1(77, 30, 1, 10);
const IPv4Addr kRdzNs2(77, 30, 1, 11);
const IPv4Addr kRdzNs3(77, 30, 2, 10);

constexpr double kMilCapacity = 40e3;
constexpr double kMilSharedLink = 137e3;  // the /24's shared upstream
constexpr double kRdzCapacity = 45e3;
constexpr double kBaseRttRu = 50.0;  // Moscow from the NL vantage

struct Setup {
  dns::DnsRegistry registry;
  attack::AttackSchedule schedule;
  SimTime mil_start, mil_end, geo_start, geo_end;
  SimTime rdz_start, rdz_end, rdz_residual_end;
};

void build_setup(Setup& s, const RussiaParams& params) {
  netsim::Rng rng(params.seed);

  const auto add_ns = [&](IPv4Addr ip, double capacity, const char* host) {
    dns::Nameserver ns(ip, {dns::Site{"MOW", capacity, kBaseRttRu, 1.0}},
                       host);
    ns.set_legit_pps(1.5e3);
    ns.set_home_country("RU");
    s.registry.add_nameserver(std::move(ns));
  };
  (void)rng;
  add_ns(kMilNs1, kMilCapacity, "ns1.mil.example");
  add_ns(kMilNs2, kMilCapacity, "ns2.mil.example");
  add_ns(kMilNs3, kMilCapacity, "ns3.mil.example");
  add_ns(kRdzNs1, kRdzCapacity, "ns1.rzd.example");
  add_ns(kRdzNs2, kRdzCapacity, "ns2.rzd.example");
  add_ns(kRdzNs3, kRdzCapacity, "ns3.rzd.example");

  // mil.ru, its Cyrillic IDN, and subdomains share the delegation.
  const std::vector<netsim::IPv4Addr> mil_set = {kMilNs1, kMilNs2, kMilNs3};
  for (const char* name :
       {"mil.ru", "xn--90adear.xn--p1ai", "www.mil.ru", "recrut.mil.ru",
        "stat.mil.ru", "tvzvezda.mil.ru", "ens.mil.ru", "doc.mil.ru"}) {
    s.registry.add_domain(dns::DomainName::must(name), mil_set);
  }
  const std::vector<netsim::IPv4Addr> rdz_set = {kRdzNs1, kRdzNs2, kRdzNs3};
  for (const char* name : {"rzd.ru", "pass.rzd.ru", "ticket.rzd.ru",
                           "cargo.rzd.ru", "www.rzd.ru", "eng.rzd.ru"}) {
    s.registry.add_domain(dns::DomainName::must(name), rdz_set);
  }

  // ---- mil.ru attack: March 11-18, modest telescope-visible flood per
  // nameserver plus a heavy invisible vector that saturates the shared /24
  // uplink (multi-vector; §4.3 blind spot).
  s.mil_start = SimTime::from_utc(2022, 3, 11, 6, 0, 0);
  s.mil_end = SimTime::from_utc(2022, 3, 18, 20, 0, 0);
  s.geo_start = SimTime::from_utc(2022, 3, 12, 0, 0, 0);
  s.geo_end = SimTime::from_utc(2022, 3, 17, 0, 0, 0);
  const std::int64_t mil_dur = s.mil_end - s.mil_start;
  for (const auto& ip : {kMilNs1, kMilNs2, kMilNs3}) {
    attack::AttackSpec vis;
    vis.target = ip;
    vis.start = s.mil_start;
    vis.duration_s = mil_dur;
    vis.peak_pps = 9e3;  // modest at the telescope
    vis.protocol = attack::Protocol::UDP;
    vis.first_port = 53;
    vis.steady = true;
    s.schedule.add(vis);

    // Invisible companion vector: per-server utilisation ~0.95 and a
    // shared-/24 link at ~0.8 — severe degradation (as the press
    // reported), yet modest backscatter (as the telescope inferred).
    attack::AttackSpec invis = vis;
    invis.id = 0;
    invis.spoof = attack::SpoofType::Direct;
    invis.peak_pps = 27.5e3;
    s.schedule.add(invis);
  }
  s.schedule.set_link_capacity(kMilNs1, kMilSharedLink);
  // Geofence response (reported by the press; §5.2.1).
  for (const auto& ip : {kMilNs1, kMilNs2, kMilNs3}) {
    s.registry.mutable_nameserver(ip).set_geofence_interval(s.geo_start,
                                                            s.geo_end);
  }

  // ---- RZD attack: March 8, 15:30-20:45 visible saturation, residual
  // invisible pressure until ~06:00 keeping resolution intermittent.
  s.rdz_start = SimTime::from_utc(2022, 3, 8, 15, 30, 0);
  s.rdz_end = SimTime::from_utc(2022, 3, 8, 20, 45, 0);
  s.rdz_residual_end = SimTime::from_utc(2022, 3, 9, 6, 0, 0);
  for (const auto& ip : {kRdzNs1, kRdzNs2, kRdzNs3}) {
    attack::AttackSpec vis;
    vis.target = ip;
    vis.start = s.rdz_start;
    vis.duration_s = s.rdz_end - s.rdz_start;
    vis.peak_pps = kRdzCapacity * 25.0;  // crowdsourced port-53 flood
    vis.protocol = attack::Protocol::UDP;
    vis.first_port = 53;
    vis.steady = true;
    s.schedule.add(vis);

    // Residual pressure until ~06:00: pulsed invisible floods (10 minutes
    // on, 10 minutes off) keep resolution intermittent through the night.
    for (SimTime t = s.rdz_end; t < s.rdz_residual_end;
         t = t + 4 * netsim::kSecondsPerWindow) {
      attack::AttackSpec pulse;
      pulse.target = ip;
      pulse.start = t;
      pulse.duration_s = 2 * netsim::kSecondsPerWindow;
      pulse.peak_pps = kRdzCapacity * 25.0;
      pulse.spoof = attack::SpoofType::Direct;
      pulse.protocol = attack::Protocol::UDP;
      pulse.first_port = 53;
      pulse.steady = true;
      s.schedule.add(pulse);
    }
  }
  s.schedule.set_link_capacity(kRdzNs1, 1e6);
  s.schedule.set_link_capacity(kRdzNs3, 1e6);
}

}  // namespace

RussiaResult run_russia(const RussiaParams& params) {
  Setup setup;
  build_setup(setup, params);

  RussiaResult result;
  result.milru.attack_start = setup.mil_start;
  result.milru.attack_end = setup.mil_end;
  result.milru.geofence_start = setup.geo_start;
  result.milru.geofence_end = setup.geo_end;
  result.rdz.attack_start = setup.rdz_start;
  result.rdz.attack_end = setup.rdz_end;
  result.milru_distinct_slash24 = 1;  // by construction (same /24)
  result.rdz_distinct_slash24 = 2;

  // Telescope feed and stitched events.
  const telescope::Darknet darknet = telescope::Darknet::ucsd_like();
  telescope::RSDoSFeed feed{telescope::InferenceParams{},
                            attack::BackscatterModelParams{}};
  feed.ingest(setup.schedule, darknet, params.seed ^ 0xFEED);
  const auto events = feed.events();

  // ---- OpenINTEL daily view of mil.ru (March 9-19).
  openintel::SweeperParams sp;
  sp.model = params.model;
  sp.seed = params.seed ^ 0x02;
  const openintel::Sweeper sweeper(setup.registry, setup.schedule, sp);
  openintel::MeasurementStore store;
  const netsim::DayIndex d0 = setup.mil_start.day() - 2;
  const netsim::DayIndex d1 = setup.mil_end.day() + 1;
  for (netsim::DayIndex day = d0; day <= d1; ++day) {
    sweeper.sweep_day(
        day, [&store](const openintel::Measurement& m) { store.add(m); });
  }
  const dns::NssetId mil_nsset = setup.registry.nsset_of_domain(0);
  for (netsim::DayIndex day = d0; day <= d1; ++day) {
    if (const auto* agg = store.daily(mil_nsset, day)) {
      result.milru.openintel_daily.push_back(DailySuccess{
          day, agg->measured
                   ? static_cast<double>(agg->ok) / agg->measured
                   : 0.0});
    }
  }

  // ---- Reactive campaigns.
  reactive::ReactiveParams rp;
  rp.model = params.model;
  rp.seed = params.seed ^ 0x03;
  const reactive::ReactivePlatform platform(setup.registry, setup.schedule,
                                            rp);
  bool saw_geofence_response = false;
  for (const auto& ev : events) {
    if (ev.victim == kMilNs1) {
      const reactive::Campaign campaign = platform.run_campaign(ev);
      result.milru.attack_windows_probed = campaign.attack_windows_probed();
      result.milru.unresolvable_attack_windows =
          campaign.fully_unresolvable_attack_windows();
      for (const auto& w : campaign.windows) {
        const SimTime t = netsim::window_start(w.window);
        if (t < setup.geo_start || t >= setup.geo_end) continue;
        for (const auto& [ns, tally] : w.per_ns) {
          if (tally.responses > 0) saw_geofence_response = true;
        }
      }
      result.milru.no_ns_responsive_during_geofence = !saw_geofence_response;
    } else if (ev.victim == kRdzNs1) {
      const reactive::Campaign campaign = platform.run_campaign(ev);
      double probed = 0.0, resolved = 0.0;
      for (const auto& w : campaign.windows) {
        if (!w.during_attack) continue;
        probed += w.domains_probed;
        resolved += w.domains_resolved;
      }
      result.rdz.during_attack_resolution_rate =
          probed > 0.0 ? resolved / probed : 0.0;
      // Sustained recovery: three consecutive post-attack windows >= 90%.
      int streak = 0;
      for (const auto& w : campaign.windows) {
        if (w.window <= campaign.attack_end) continue;
        streak = w.resolution_rate() >= 0.9 ? streak + 1 : 0;
        if (streak == 3) {
          result.rdz.recovery_time =
              netsim::window_start(w.window - 2);
          break;
        }
      }
    }
  }
  return result;
}

}  // namespace ddos::scenario
