// Longitudinal driver — wires the full pipeline of Fig. 1 end to end for
// the seventeen-month study:
//
//   world -> attack workload -> darknet backscatter -> RSDoS feed
//         -> (sparse) OpenINTEL sweep -> measurement store
//         -> previous-day join -> NSSet attack events -> analyses.
//
// Sparse sweep: the production OpenINTEL sweeps every domain every day;
// replaying that here would be ~10^8 resolutions of which the analyses
// consume only the attack-adjacent slices. The driver therefore sweeps
// exactly the domains whose NSSet has an inferred attack that day, the day
// before (baseline + previous-day join), or the day after an attack began.
// Because each measurement's time and randomness depend only on
// (seed, domain, day), the retained measurements are bit-identical to a
// full sweep's — the skipped ones are those no analysis reads.
#pragma once

#include <memory>
#include <vector>

#include "core/columnar.h"
#include "core/join.h"
#include "core/resilience.h"
#include "openintel/storage.h"
#include "openintel/sweeper.h"
#include "scenario/plan.h"
#include "scenario/workload.h"
#include "scenario/world.h"
#include "telescope/feed.h"

namespace ddos::scenario {

struct LongitudinalConfig {
  WorldParams world;
  LongitudinalParams workload;
  telescope::InferenceParams inference;
  attack::BackscatterModelParams backscatter;
  dns::LoadModelParams model;
  dns::ResolverParams resolver;
  core::JoinParams join;
  std::uint64_t sweep_seed = 11;
  std::uint64_t feed_seed = 13;
};

/// Default config used by the benches; tests shrink world/scale.
LongitudinalConfig default_longitudinal_config();
/// Fast preset for unit/integration tests.
LongitudinalConfig small_longitudinal_config(std::uint64_t seed = 7);

/// The pipeline's data artifacts — everything the analyses and the DRS
/// persistence consume. One struct shared (as a base) by a live run
/// (LongitudinalResult) and a loaded store (StoredRun) so the two can
/// never drift apart field-by-field.
struct RunArtifacts {
  telescope::Darknet darknet = telescope::Darknet::ucsd_like();
  telescope::RSDoSFeed feed{telescope::InferenceParams{},
                            attack::BackscatterModelParams{}};
  /// Records the telescope inferred. Streaming runs retire the record
  /// vector shard by shard (feed.records() stays empty unless
  /// StreamingOptions::retain_feed), so counts must come from here, not
  /// from feed.records().size().
  std::uint64_t feed_records = 0;
  std::vector<telescope::RSDoSEvent> events;  // stitched telescope events
  openintel::MeasurementStore store;
  std::vector<core::NssetAttackEvent> joined;
  core::JoinStats join_stats;
  std::uint64_t swept_measurements = 0;
};

struct LongitudinalResult : RunArtifacts {
  std::unique_ptr<World> world;
  Workload workload;
  /// Bytes written to StreamingOptions::store_path (streaming runs that
  /// persist a store only; materialized runs persist via save_run).
  std::uint64_t store_bytes = 0;
};

LongitudinalResult run_longitudinal(const LongitudinalConfig& config);

// ---- sharded generation (`generate --shard i/N`, plan/execute/compact).
//
// run_shard executes one shard of plan.h's N-way day partition and writes
// an independent DRS shard store: the same meta/block layout as save_run
// restricted to the shard's owned day range and events, plus a shard
// manifest (shard.index/shard.count footer meta) and a "shard.src_event"
// column recording each joined row's canonical telescope-event index.
// store::merge_stores k-way merges the N shard files into one store
// byte-identical to a single-process `generate --store` of the same
// config — for any N and any thread count.

/// What one shard produced — the CLI summary line and the accounting the
/// shard tests check (per-shard counts sum to the whole run's).
struct ShardRunResult {
  ShardSpec spec;
  netsim::DayIndex day_lo = 0;  // owned day range [day_lo, day_hi)
  netsim::DayIndex day_hi = 0;
  std::uint64_t events_total = 0;  // world-wide stitched telescope events
  std::uint64_t owned_events = 0;  // telescope events this shard joined
  std::uint64_t feed_rows = 0;     // feed slice persisted by this shard
  std::uint64_t joined_rows = 0;   // pre-merge NSSet-events persisted
  std::uint64_t swept_measurements = 0;  // owned-day measurements only
  std::uint64_t store_bytes = 0;
};

/// Execute shard `spec` against `config`'s world and write its DRS shard
/// store to `store_path`. `threads` is recorded as run.threads provenance
/// (merge requires it to match across shards — the merged file reproduces
/// a single-process run at that --threads). Throws store::StoreError on
/// write failure, std::invalid_argument on a bad spec.
ShardRunResult run_shard(const LongitudinalConfig& config,
                         const ShardSpec& spec, unsigned threads,
                         const std::string& store_path);

// ---- streaming day-epoch pipeline.
//
// Same pipeline, bounded memory: the sweep plan's days flow through
// exec::Channel-connected stages (plan producer -> sweep -> fold/join),
// each event joins as soon as the last day it reads has been folded, and
// the MeasurementStore retires every day no pending join can still need
// (the join only ever reads day d-1 baselines, attack-window days, and
// the previous-day seen-NS sets). Epoch boundaries are pure functions of
// the day index, so the output — joined events, join stats, the store
// remnant, and an optional DRS file — is bit-identical to
// run_longitudinal at any thread count and any channel capacity.

struct StreamingOptions {
  /// Days of folded state kept beyond the join watermark before eviction
  /// (>= 1; more window only delays retirement, never changes output).
  netsim::DayIndex window_days = 2;
  /// Bounded capacity of each inter-stage channel (clamped to >= 1).
  std::size_t channel_capacity = 4;
  /// When non-empty, stream a save_run-equivalent DRS store to this path
  /// (columns appended per retired epoch — the full store never
  /// materialises in memory).
  std::string store_path;
  /// Recorded as the run.threads provenance meta when store_path is set
  /// (save_run takes the same value as a parameter).
  unsigned threads = 0;
  /// Keep the full record vector in result.feed (needed by --feed-csv).
  /// Off by default: each ingest shard's records are folded into the
  /// incremental event stitcher (and the DRS feed columns, when
  /// persisting) and released, so peak memory stays bounded by one
  /// parallel region's shard output instead of the whole feed.
  bool retain_feed = false;
};

LongitudinalResult run_longitudinal_streaming(const LongitudinalConfig& config,
                                              const StreamingOptions& options);

// ---- generate/analyze stage split (DRS dataset store, src/store/).
//
// `save_run` persists a finished run's three datasets — RSDoS feed
// windows, OpenINTEL sweep aggregates, joined NSSet-attack events — plus
// the full generating provenance (world/workload/inference/join params,
// seeds, thread count, result counts) as one DRS container.
// `load_run` reads it back (every block CRC-validated, decodes fanned out
// across the exec pool) so analyses re-run without re-simulating, and
// `rejoin_from_store` re-executes the join stage from the stored
// aggregates to assert the store reproduces the generating run
// bit-for-bit.

struct StoredRun : RunArtifacts {
  /// Provenance-restored config: world, workload seed/scale knobs,
  /// inference, join and sweep/feed seeds. Model/resolver params stay at
  /// defaults (the CLI cannot change them); rejoin_from_store's equality
  /// assertion would catch any divergence loudly.
  LongitudinalConfig config;
  unsigned threads = 0;            // generating run's worker count
  std::uint64_t attacks = 0;       // generating workload size
};

/// Write `result` (+ provenance) as a DRS store. Returns bytes written;
/// throws store::StoreError when the file cannot be written.
std::uint64_t save_run(const std::string& path,
                       const LongitudinalConfig& config, unsigned threads,
                       const LongitudinalResult& result);

/// Load a save_run store. Validates every block checksum and asserts the
/// decoded datasets match the stored result counts; throws
/// store::StoreError on any defect. `use_mmap` selects the zero-copy
/// mapped reader (the default; decoded datasets are copies either way,
/// so nothing dangles when the mapping closes on return) or the
/// buffered fallback (`analyze --no-mmap`).
StoredRun load_run(const std::string& path, bool use_mmap = true);

/// Re-run the join stage from a loaded store: the world is rebuilt from
/// the stored provenance (deterministic in the seed) and the join reads
/// the stored aggregates — no sweep. The result must equal `run.joined`
/// bit-for-bit; callers assert that.
struct RejoinResult {
  std::vector<core::NssetAttackEvent> joined;
  core::JoinStats stats;
};
RejoinResult rejoin_from_store(const StoredRun& run);

/// Field-exact comparison of a rejoin result against the stored events
/// *columns* (core::frame_equals_events over a fresh scan) plus the
/// stored join stats — the columnar form of the --rejoin bit-for-bit
/// assertion; the stored rows are never materialized for the check.
bool rejoin_matches_store(const std::string& path, bool use_mmap,
                          const StoredRun& run, const RejoinResult& rejoin);

// ---- columnar analyze pass (store/scan.h + core/columnar.h).
//
// `analyze_store` recomputes the headline §6 statistics straight off the
// DRS column spans: the file is mapped (or buffered with
// use_mmap=false), every block decodes exactly once into reusable arena
// buffers or zero-copy spans, and the kernels fan out over row shards
// with ordered reduction — no NssetAttackEvent row is ever built. The
// kernel results are bit-identical to load_run + the row analyses.

struct StoreAnalysis {
  // Provenance echoed for the analyze header.
  std::uint64_t world_seed = 0;
  std::uint32_t domain_count = 0;
  std::uint32_t provider_count = 0;
  std::uint64_t workload_seed = 0;
  double workload_scale = 0.0;
  std::uint64_t sweep_seed = 0;
  std::uint64_t feed_seed = 0;
  unsigned threads = 0;  // generating run's worker count
  // Stored result counts (the pipeline summary line).
  std::uint64_t attacks = 0;
  std::uint64_t feed_records = 0;
  std::uint64_t events = 0;
  std::uint64_t joined = 0;
  std::uint64_t swept_measurements = 0;
  // Scan statistics.
  std::uint64_t file_bytes = 0;
  bool mapped = false;
  double read_MBps = 0.0;  // full-file columnar scan throughput
  // Headline kernels (columnar; bit-identical to the row path).
  core::ImpactSummary impact;
  core::FailureSummary failures;
  core::CorrelationSeries duration_series;
  std::vector<core::GroupImpact> by_anycast;
  std::vector<core::MonthlyJoinedRow> monthly;
};

StoreAnalysis analyze_store(const std::string& path, bool use_mmap = true);

}  // namespace ddos::scenario
