// Longitudinal driver — wires the full pipeline of Fig. 1 end to end for
// the seventeen-month study:
//
//   world -> attack workload -> darknet backscatter -> RSDoS feed
//         -> (sparse) OpenINTEL sweep -> measurement store
//         -> previous-day join -> NSSet attack events -> analyses.
//
// Sparse sweep: the production OpenINTEL sweeps every domain every day;
// replaying that here would be ~10^8 resolutions of which the analyses
// consume only the attack-adjacent slices. The driver therefore sweeps
// exactly the domains whose NSSet has an inferred attack that day, the day
// before (baseline + previous-day join), or the day after an attack began.
// Because each measurement's time and randomness depend only on
// (seed, domain, day), the retained measurements are bit-identical to a
// full sweep's — the skipped ones are those no analysis reads.
#pragma once

#include <memory>
#include <vector>

#include "core/join.h"
#include "core/resilience.h"
#include "openintel/storage.h"
#include "openintel/sweeper.h"
#include "scenario/workload.h"
#include "scenario/world.h"
#include "telescope/feed.h"

namespace ddos::scenario {

struct LongitudinalConfig {
  WorldParams world;
  LongitudinalParams workload;
  telescope::InferenceParams inference;
  attack::BackscatterModelParams backscatter;
  dns::LoadModelParams model;
  dns::ResolverParams resolver;
  core::JoinParams join;
  std::uint64_t sweep_seed = 11;
  std::uint64_t feed_seed = 13;
};

/// Default config used by the benches; tests shrink world/scale.
LongitudinalConfig default_longitudinal_config();
/// Fast preset for unit/integration tests.
LongitudinalConfig small_longitudinal_config(std::uint64_t seed = 7);

struct LongitudinalResult {
  std::unique_ptr<World> world;
  Workload workload;
  telescope::Darknet darknet = telescope::Darknet::ucsd_like();
  telescope::RSDoSFeed feed{telescope::InferenceParams{},
                            attack::BackscatterModelParams{}};
  std::vector<telescope::RSDoSEvent> events;  // stitched telescope events
  openintel::MeasurementStore store;
  std::vector<core::NssetAttackEvent> joined;
  core::JoinStats join_stats;
  std::uint64_t swept_measurements = 0;
};

LongitudinalResult run_longitudinal(const LongitudinalConfig& config);

}  // namespace ddos::scenario
