#include "scenario/world.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

#include "util/strings.h"

namespace ddos::scenario {

const char* to_string(DeployStyle s) {
  switch (s) {
    case DeployStyle::UnicastSinglePrefix: return "unicast-single-prefix";
    case DeployStyle::UnicastMultiPrefix: return "unicast-multi-prefix";
    case DeployStyle::UnicastMultiAS: return "unicast-multi-as";
    case DeployStyle::PartialAnycast: return "partial-anycast";
    case DeployStyle::FullAnycast: return "full-anycast";
  }
  return "unknown";
}

namespace {

struct NamedOrg {
  const char* name;
  topology::Asn asn;
  const char* cc;
};

// Table-4 flavour: the large DNS/cloud organisations the paper finds most
// attacked, placed on the top size ranks.
constexpr NamedOrg kFamous[] = {
    {"Google", 15169, "US"},         {"Unified Layer", 46606, "US"},
    {"Cloudflare", 13335, "US"},     {"OVH", 16276, "FR"},
    {"Hetzner", 24940, "DE"},        {"Amazon", 16509, "US"},
    {"Microsoft", 8068, "US"},       {"Fastly", 54113, "US"},
    {"GoDaddy", 26496, "US"},        {"Birbir", 199608, "TR"},
    {"Pendc", 48678, "TR"},          {"TransIP", 20857, "NL"},
};

// Table-6 flavour: small-to-medium hosting organisations that absorbed the
// worst RTT impacts, plus the §6 case organisations. `rank_frac` places
// each on the provider-size scale (0 = largest): nic.ru is a large
// registrar, Euskaltel a mid-size regional ISP, the rest small-to-medium
// hosters. All are forced to unicast deployments — that is what made them
// impactable in the paper (§6.6.1).
struct MidOrg {
  NamedOrg org;
  double rank_frac;
};
constexpr MidOrg kMidOrgs[] = {
    {{"nic.ru", 48287, "RU"}, 0.012},
    {{"Euskaltel", 12338, "ES"}, 0.018},
    {{"Beeline RU", 3216, "RU"}, 0.030},
    {{"Contabo", 51167, "DE"}, 0.045},
    {{"Linode", 63949, "US"}, 0.060},
    {{"NForce B.V.", 43350, "NL"}, 0.080},
    {{"Co-Co NL", 205970, "NL"}, 0.110},
    {{"NMU Group", 203989, "SE"}, 0.150},
    {{"My Lock De", 205601, "DE"}, 0.200},
    {{"DigiHosting NL", 206264, "NL"}, 0.260},
    {{"Apple Russia", 6735, "RU"}, 0.330},
    {{"ITandTEL", 42473, "AT"}, 0.420},
};

constexpr const char* kCountries[] = {"US", "DE", "NL", "FR", "GB", "RU",
                                      "BR", "JP", "IN", "CN", "ES", "IT",
                                      "SE", "PL", "TR", "CA", "AU", "AT"};

constexpr const char* kTlds[] = {"com", "com", "com", "com", "net", "org",
                                 "nl",  "ru",  "de",  "fr",  "info", "io"};

/// Sequential /24 allocator over synthetic unicast space (60.0.0.0/6-ish),
/// avoiding the darknet blocks.
class PrefixAllocator {
 public:
  explicit PrefixAllocator(std::uint32_t base) : next_(base) {}
  netsim::Prefix next24() {
    const netsim::Prefix p(netsim::IPv4Addr(next_), 24);
    next_ += 256;
    return p;
  }

 private:
  std::uint32_t next_;
};

}  // namespace

const std::vector<std::string>& famous_provider_names() {
  static const std::vector<std::string> names = [] {
    std::vector<std::string> v;
    for (const auto& o : kFamous) v.emplace_back(o.name);
    return v;
  }();
  return names;
}

const std::vector<std::string>& table6_provider_names() {
  static const std::vector<std::string> names = {
      "NForce B.V.", "Co-Co NL",       "NMU Group", "Hetzner",
      "My Lock De",  "DigiHosting NL", "Apple Russia",
      "GoDaddy",     "Linode",         "ITandTEL"};
  return names;
}

netsim::IPv4Addr World::random_other_ip(netsim::Rng& rng) const {
  if (other_prefixes.empty())
    throw std::logic_error("World: no non-DNS prefixes");
  const auto& p = other_prefixes[static_cast<std::size_t>(
      rng.uniform_u64(other_prefixes.size()))];
  const std::uint64_t host = 1 + rng.uniform_u64(p.size() - 2);
  return netsim::IPv4Addr(p.network().value() +
                          static_cast<std::uint32_t>(host));
}

int World::provider_index(const std::string& name) const {
  for (std::size_t i = 0; i < providers.size(); ++i) {
    if (providers[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

netsim::IPv4Addr World::ns_ip_of(const std::string& provider_name,
                                 std::size_t idx) const {
  const int p = provider_index(provider_name);
  if (p < 0)
    throw std::out_of_range("World: unknown provider " + provider_name);
  return providers[static_cast<std::size_t>(p)].ns_ips.at(idx);
}

WorldParams small_world_params(std::uint64_t seed) {
  WorldParams p;
  p.seed = seed;
  p.provider_count = 40;
  p.domain_count = 2000;
  p.open_resolver_misconfigs = 10;
  return p;
}

std::unique_ptr<World> build_world(const WorldParams& params) {
  if (params.provider_count == 0 || params.domain_count == 0)
    throw std::invalid_argument("build_world: empty world");

  auto world = std::make_unique<World>();
  world->params = params;
  netsim::Rng rng(params.seed);

  const std::uint32_t n = params.provider_count;
  world->providers.resize(n);

  // ---- Organisations: famous providers on the top ranks, the Table-6 /
  // case organisations spread through the middle, synthetic orgs elsewhere.
  std::vector<bool> named(n, false);
  std::uint32_t next_synthetic_asn = 64512;
  const auto assign = [&](std::uint32_t rank, const NamedOrg& org) {
    rank = std::min(rank, n - 1);
    while (named[rank]) rank = (rank + 1) % n;  // first free rank
    named[rank] = true;
    world->providers[rank].name = org.name;
    world->providers[rank].asns = {org.asn};
    world->orgs.add(topology::AsInfo{org.asn, org.name, org.cc});
  };

  for (std::uint32_t i = 0; i < std::size(kFamous); ++i) {
    assign(i, kFamous[i]);
  }
  // Mid-tier named organisations at their designated size ranks.
  for (const auto& mid : kMidOrgs) {
    assign(static_cast<std::uint32_t>(n * mid.rank_frac + 12), mid.org);
  }
  for (std::uint32_t i = 0; i < n; ++i) {
    if (named[i]) continue;
    Provider& p = world->providers[i];
    char buf[32];
    std::snprintf(buf, sizeof(buf), "Provider-%04u", i);
    p.name = buf;
    const topology::Asn asn = next_synthetic_asn++;
    p.asns = {asn};
    world->orgs.add(topology::AsInfo{
        asn, p.name,
        kCountries[rng.uniform_u64(std::size(kCountries))]});
  }

  // ---- Domain -> provider assignment: rank-weighted (w = (rank+1)^-a)
  // via a cumulative table + binary search.
  std::vector<double> cumulative(n);
  double acc = 0.0;
  for (std::uint32_t i = 0; i < n; ++i) {
    acc += std::pow(static_cast<double>(i + 1), -params.size_exponent);
    cumulative[i] = acc;
  }
  std::vector<std::uint32_t> domain_provider(params.domain_count);
  for (auto& dp : domain_provider) {
    const double r = rng.uniform() * acc;
    dp = static_cast<std::uint32_t>(
        std::lower_bound(cumulative.begin(), cumulative.end(), r) -
        cumulative.begin());
  }
  for (const auto dp : domain_provider) ++world->providers[dp].domains_hosted;

  // ---- Cloud superblocks: customer deployments hosted inside a large
  // org's address space get attributed to that org via prefix2as, exactly
  // as the paper attributes Hetzner/Linode/GoDaddy impact events.
  const std::vector<std::string> cloud_orgs = {
      "Hetzner", "OVH", "Unified Layer", "Linode", "Contabo", "GoDaddy"};
  std::unordered_map<std::string, PrefixAllocator> cloud_alloc;
  {
    std::uint32_t base = netsim::IPv4Addr(80, 0, 0, 0).value();
    for (const auto& org : cloud_orgs) {
      cloud_alloc.emplace(org, PrefixAllocator(base));
      base += 1u << 18;  // a /14 superblock per cloud org
    }
  }
  const auto cloud_asn_of = [&](const std::string& org) -> topology::Asn {
    for (const auto& o : kFamous)
      if (org == o.name) return o.asn;
    for (const auto& o : kMidOrgs)
      if (org == o.org.name) return o.org.asn;
    return 0;
  };
  const auto is_named_mid = [&](const std::string& name) {
    for (const auto& o : kMidOrgs)
      if (name == o.org.name) return true;
    return false;
  };

  PrefixAllocator unicast_alloc(netsim::IPv4Addr(60, 0, 0, 0).value());
  PrefixAllocator anycast_alloc(netsim::IPv4Addr(76, 0, 0, 0).value());

  // ---- Per-provider deployment.
  struct Plan {
    std::vector<netsim::IPv4Addr> ips;
  };
  std::vector<std::vector<Plan>> plans(n);

  for (std::uint32_t rank = 0; rank < n; ++rank) {
    Provider& p = world->providers[rank];
    const double rank_frac = static_cast<double>(rank) / n;

    // Style stratified by size (cf. anycast adoption skewing large).
    if (rank < 12) {
      p.style = DeployStyle::FullAnycast;
    } else if (rank_frac < 0.08) {
      const double u = rng.uniform();
      p.style = u < 0.45   ? DeployStyle::FullAnycast
                : u < 0.70 ? DeployStyle::PartialAnycast
                : u < 0.85 ? DeployStyle::UnicastMultiAS
                           : DeployStyle::UnicastMultiPrefix;
    } else if (rank_frac < 0.35) {
      const double u = rng.uniform();
      p.style = u < 0.12   ? DeployStyle::FullAnycast
                : u < 0.28 ? DeployStyle::PartialAnycast
                : u < 0.42 ? DeployStyle::UnicastMultiAS
                : u < 0.72 ? DeployStyle::UnicastMultiPrefix
                           : DeployStyle::UnicastSinglePrefix;
    } else {
      const double u = rng.uniform();
      p.style = u < 0.04   ? DeployStyle::PartialAnycast
                : u < 0.10 ? DeployStyle::UnicastMultiAS
                : u < 0.38 ? DeployStyle::UnicastMultiPrefix
                           : DeployStyle::UnicastSinglePrefix;
    }
    // The named case organisations are unicast in the paper — that is
    // precisely why attacks against them were impactful (§6.6.1). About
    // half run everything out of one /24 (the Fig. 13 worst case), the
    // rest spread over a few prefixes (which §5.2.3 shows is not enough
    // against an all-nameserver attack).
    if (is_named_mid(p.name)) {
      static const std::unordered_set<std::string> kSinglePrefix = {
          "Euskaltel",   "My Lock De",   "DigiHosting NL",
          "ITandTEL",    "Apple Russia", "NForce B.V."};
      p.style = kSinglePrefix.contains(p.name)
                    ? DeployStyle::UnicastSinglePrefix
                    : DeployStyle::UnicastMultiPrefix;
    }

    // Pool size: number of NS addresses the provider operates.
    std::size_t pool = 0;
    if (rank < 12) pool = 4 + rng.uniform_u64(6);         // 4..9
    else if (rank_frac < 0.35) pool = 3 + rng.uniform_u64(3);  // 3..5
    else pool = 2 + rng.uniform_u64(2);                   // 2..3

    // Cloud hosting for small synthetic providers.
    const bool cloud_hosted =
        rank_frac > 0.45 && p.asns[0] >= 64512 && rng.chance(0.30);
    std::string cloud_org;
    if (cloud_hosted) {
      cloud_org = cloud_orgs[rng.uniform_u64(cloud_orgs.size())];
      p.hosted_on = cloud_org;
    }

    // Prefix allocation per style.
    std::vector<netsim::Prefix> prefixes;
    std::vector<topology::Asn> prefix_asn;
    const auto take24 = [&](bool anycast_block) -> netsim::Prefix {
      if (cloud_hosted) return cloud_alloc.at(cloud_org).next24();
      return anycast_block ? anycast_alloc.next24() : unicast_alloc.next24();
    };
    std::size_t prefix_count = 1;
    switch (p.style) {
      case DeployStyle::UnicastSinglePrefix: prefix_count = 1; break;
      case DeployStyle::UnicastMultiPrefix:
        prefix_count = 2 + rng.uniform_u64(2);
        break;
      case DeployStyle::UnicastMultiAS: prefix_count = 2 + rng.uniform_u64(2); break;
      case DeployStyle::PartialAnycast: prefix_count = 2; break;
      case DeployStyle::FullAnycast: prefix_count = 1 + rng.uniform_u64(2); break;
    }
    for (std::size_t i = 0; i < prefix_count; ++i) {
      const bool anycast_pfx =
          p.style == DeployStyle::FullAnycast ||
          (p.style == DeployStyle::PartialAnycast && i == 0);
      prefixes.push_back(take24(anycast_pfx));
      topology::Asn asn = cloud_hosted ? cloud_asn_of(cloud_org) : p.asns[0];
      if (p.style == DeployStyle::UnicastMultiAS && i > 0 && !cloud_hosted) {
        // Secondary NS with a partner organisation: new ASN.
        asn = next_synthetic_asn++;
        world->orgs.add(topology::AsInfo{asn, p.name + " partner",
                                         world->orgs.country_of(p.asns[0])});
        p.asns.push_back(asn);
      }
      prefix_asn.push_back(asn);
      world->routes.announce(prefixes.back(), asn);
    }

    // Capacity model: sublinear over-provisioning with hosted size.
    const double headroom =
        std::pow(1.0 + static_cast<double>(p.domains_hosted),
                 params.capacity_exponent);
    const double capacity =
        params.capacity_base_pps * headroom * rng.uniform(0.7, 1.4);
    p.site_capacity_pps = capacity;
    const double legit =
        std::max(params.legit_pps_floor,
                 params.legit_pps_per_domain *
                     static_cast<double>(p.domains_hosted));

    // European case organisations sit close to the NL vantage: low base
    // RTT, which is what makes their extreme Impact_on_RTT ratios
    // arithmetically possible (a 348x spike over a 12 ms baseline is a
    // ~4 s resolution; over a 60 ms baseline it could not fit a resolver's
    // retry budget).
    const auto& t6 = table6_provider_names();
    const bool near_vantage =
        std::find(t6.begin(), t6.end(), p.name) != t6.end();

    // Instantiate nameservers from the pool, round-robin over prefixes.
    for (std::size_t k = 0; k < pool; ++k) {
      const std::size_t pfx = k % prefixes.size();
      const netsim::IPv4Addr ip(prefixes[pfx].network().value() +
                                static_cast<std::uint32_t>(10 + k));
      const bool ip_anycast =
          p.style == DeployStyle::FullAnycast ||
          (p.style == DeployStyle::PartialAnycast && pfx == 0);

      std::vector<dns::Site> sites;
      if (ip_anycast) {
        // Anycast operators are the well-provisioned class: more headroom
        // per site on top of the catchment spreading (§6.6.1).
        const std::size_t site_count = 6 + rng.uniform_u64(19);  // 6..24
        sites.reserve(site_count);
        for (std::size_t s = 0; s < site_count; ++s) {
          sites.push_back(dns::Site{
              "site" + std::to_string(s), capacity * 2.2,
              rng.uniform(8.0, 45.0), rng.uniform(0.5, 1.5)});
        }
      } else {
        const double base_rtt =
            near_vantage ? rng.uniform(11.0, 13.5) : rng.uniform(12.0, 60.0);
        sites.push_back(dns::Site{"uni", capacity, base_rtt, 1.0});
      }
      // Hostname label from the org name: lower-case, non-alphanumerics
      // collapsed to dashes (zone-file safe).
      std::string org_label;
      for (const char c : util::to_lower(p.name)) {
        org_label.push_back(
            (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ? c : '-');
      }
      dns::Nameserver ns(ip, std::move(sites),
                         "ns" + std::to_string(k + 1) + "." + org_label +
                             ".example");
      ns.set_legit_pps(legit);
      ns.set_home_country(world->orgs.country_of(prefix_asn[pfx]));
      world->registry.add_nameserver(std::move(ns));
      p.ns_ips.push_back(ip);
    }

    // Hosting plans: fixed NS subsets customers delegate to. Large
    // providers shard customers over *disjoint* pool slices (an attack on
    // one address reaches one shard; only an all-pool attack blasts the
    // whole customer base — the Fig. 5 mega-event signature). Smaller
    // providers reuse overlapping subsets, plan 0 being the default tier.
    if (pool >= 4 && p.domains_hosted > params.domain_count / 50) {
      std::vector<netsim::IPv4Addr> pool_copy = p.ns_ips;
      rng.shuffle(pool_copy);
      for (std::size_t at = 0; at + 2 <= pool_copy.size();) {
        const std::size_t take =
            std::min<std::size_t>(pool_copy.size() - at, 3);
        Plan plan;
        plan.ips.assign(pool_copy.begin() + static_cast<long>(at),
                        pool_copy.begin() + static_cast<long>(at + take));
        plans[rank].push_back(std::move(plan));
        at += take;
      }
    } else {
      const std::size_t plan_count =
          p.domains_hosted > 200 ? 3 : (p.domains_hosted > 20 ? 2 : 1);
      for (std::size_t pl = 0; pl < plan_count; ++pl) {
        Plan plan;
        const std::size_t take = std::min<std::size_t>(
            p.ns_ips.size(), 2 + rng.uniform_u64(3));  // 2..4 NS per domain
        std::vector<netsim::IPv4Addr> pool_copy = p.ns_ips;
        rng.shuffle(pool_copy);
        plan.ips.assign(pool_copy.begin(),
                        pool_copy.begin() + static_cast<long>(take));
        plans[rank].push_back(std::move(plan));
      }
    }
  }

  // ---- Public open resolvers (Table 5): heavily provisioned anycast.
  struct Resolver {
    netsim::IPv4Addr ip;
    const char* org;
    topology::Asn asn;
  };
  const std::vector<Resolver> resolvers = {
      {netsim::IPv4Addr(8, 8, 8, 8), "Google", 15169},
      {netsim::IPv4Addr(8, 8, 4, 4), "Google", 15169},
      {netsim::IPv4Addr(1, 1, 1, 1), "Cloudflare", 13335},
  };
  for (const auto& r : resolvers) {
    std::vector<dns::Site> sites;
    for (int s = 0; s < 30; ++s) {
      sites.push_back(dns::Site{"pop" + std::to_string(s), 5e6,
                                rng.uniform(5.0, 20.0), 1.0});
    }
    dns::Nameserver ns(r.ip, std::move(sites), "public-resolver");
    ns.set_legit_pps(50e3);
    world->registry.add_nameserver(std::move(ns));
    world->registry.mark_open_resolver(r.ip);
    world->routes.announce(netsim::Prefix(r.ip, 24), r.asn);
    world->open_resolver_ips.push_back(r.ip);
  }

  // ---- Register domains.
  for (std::uint32_t d = 0; d < params.domain_count; ++d) {
    const std::uint32_t pr = domain_provider[d];
    const auto& pr_plans = plans[pr];
    // Very large providers spread customers evenly across plans (no
    // single NSSet carries the whole base); smaller ones funnel ~70%
    // through the default plan.
    const bool spread = world->providers[pr].domains_hosted >
                        params.domain_count / 50;
    const std::size_t plan_idx =
        pr_plans.size() == 1 ? 0
        : spread             ? rng.uniform_u64(pr_plans.size())
        : (rng.chance(0.7) ? 0 : 1 + rng.uniform_u64(pr_plans.size() - 1));
    std::vector<netsim::IPv4Addr> ns_ips = pr_plans[plan_idx].ips;

    // A sprinkle of misconfigured domains use public resolvers as NS.
    if (d < params.open_resolver_misconfigs) {
      ns_ips = {world->open_resolver_ips[d % world->open_resolver_ips.size()]};
      if (rng.chance(0.5)) ns_ips.push_back(pr_plans[0].ips[0]);
    } else if (rng.chance(params.single_ns_share)) {
      // RFC 1034 violators: a single nameserver end to end.
      ns_ips = {ns_ips.front()};
    } else if (rng.chance(params.lame_ns_share)) {
      // Lame entries: a stale NS record pointing into decommissioned
      // space (a small pool — stale records cluster on old servers).
      ns_ips.push_back(netsim::IPv4Addr(
          netsim::IPv4Addr(70, 0, 0, 10).value() +
          static_cast<std::uint32_t>(rng.uniform_u64(16))));
    }

    char buf[40];
    std::snprintf(buf, sizeof(buf), "d%06u.%s", d,
                  kTlds[rng.uniform_u64(std::size(kTlds))]);
    world->registry.add_domain(dns::DomainName::must(buf), std::move(ns_ips));
  }

  // Decommissioned space the lame entries point into: routed (so the
  // audit can attribute it) but with no nameservers behind it.
  world->routes.announce(
      netsim::Prefix(netsim::IPv4Addr(70, 0, 0, 0), 24), 64999);
  world->orgs.add(topology::AsInfo{64999, "Decommissioned-Hosting", "US"});

  // ---- Non-DNS victim space (the other ~98-99% of attacks).
  {
    std::uint32_t base = netsim::IPv4Addr(120, 0, 0, 0).value();
    const std::size_t blocks = std::max<std::size_t>(64, n / 4);
    for (std::size_t i = 0; i < blocks; ++i) {
      const netsim::Prefix pfx(netsim::IPv4Addr(base), 16);
      base += 1u << 16;
      const topology::Asn asn = 90000 + static_cast<topology::Asn>(i);
      char buf[24];
      std::snprintf(buf, sizeof(buf), "Org-%04zu", i);
      world->orgs.add(topology::AsInfo{
          asn, buf, kCountries[rng.uniform_u64(std::size(kCountries))]});
      world->routes.announce(pfx, asn);
      world->other_prefixes.push_back(pfx);
    }
  }

  // ---- Anycast census: quarterly snapshots with detection recall.
  world->census = anycast::AnycastCensus::from_registry(
      world->registry, anycast::paper_census_days(), params.anycast_recall,
      params.seed ^ 0xCE45u);

  return world;
}

}  // namespace ddos::scenario
