#include "store/merge.h"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string_view>
#include <utility>

#include "core/join.h"
#include "obs/obs.h"
#include "store/dataset.h"
#include "store/epoch.h"
#include "store/reader.h"
#include "store/writer.h"
#include "util/strings.h"

namespace ddos::store {

namespace {

std::uint64_t meta_u64(const Reader& reader, std::string_view key) {
  std::uint64_t out = 0;
  if (!util::parse_u64(reader.meta_value(key), out)) {
    throw StoreError(reader.path() + ": meta key '" + std::string(key) +
                     "' is not an unsigned integer");
  }
  return out;
}

bool has_prefix(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

// Keys whose values the merger recomputes (validated-equal or summed)
// rather than copies; everything else is generating provenance and must
// be identical across shards.
bool is_result_key(std::string_view key) {
  return has_prefix(key, "result.") || has_prefix(key, "stats.");
}

bool is_shard_key(std::string_view key) { return has_prefix(key, "shard."); }

// Leading sort-key columns of the day-partitioned datasets: consecutive
// shards must hand over in strictly ascending order or the partition the
// byte-identity proof rests on is broken.
bool is_time_major_key(const ColumnDesc& desc) {
  return ((desc.dataset == "daily" || desc.dataset == "window") &&
          desc.column == "key") ||
         (desc.dataset == "ns_seen" && desc.column == "day");
}

// Generic column path: decode every shard's block in parallel, validate
// type/encoding agreement, then replay the values in shard order through
// the matching epoch appender — whose chunk-wise appends produce payloads
// byte-identical to the one-shot encode of the concatenated vector that
// save_run would have written.
std::uint64_t merge_column(Writer& writer,
                           const std::vector<const Reader*>& shards,
                           const ColumnDesc& desc,
                           std::atomic<std::uint64_t>* columns_done) {
  const std::size_t n = shards.size();
  for (const Reader* shard : shards) {
    const ColumnDesc& d = shard->column(desc.dataset, desc.column);
    if (d.type != desc.type || d.encoding != desc.encoding) {
      throw StoreError(shard->path() + ": column '" + desc.dataset + "." +
                       desc.column + "' type/encoding differs from " +
                       shards[0]->path() +
                       " — shards were written by different builds?");
    }
  }

  std::uint64_t rows = 0;
  switch (desc.type) {
    case ColumnType::U64: {
      std::vector<std::vector<std::uint64_t>> decoded(n);
      std::vector<std::function<void()>> jobs;
      jobs.reserve(n);
      for (std::size_t i = 0; i < n; ++i) {
        jobs.push_back([&decoded, &shards, &desc, i] {
          decoded[i] = shards[i]->read_u64(desc.dataset, desc.column);
        });
      }
      Reader::parallel_decode(jobs);
      if (is_time_major_key(desc)) {
        const std::uint64_t* prev_last = nullptr;
        for (std::size_t i = 0; i < n; ++i) {
          if (decoded[i].empty()) continue;
          if (prev_last != nullptr && decoded[i].front() <= *prev_last) {
            throw StoreError(shards[i]->path() + ": '" + desc.dataset + "." +
                             desc.column +
                             "' overlaps the preceding shard's range — "
                             "shard day ranges must be disjoint and "
                             "ascending by shard index");
          }
          prev_last = &decoded[i].back();
        }
      }
      U64Appender appender(desc.encoding);
      for (std::size_t i = 0; i < n; ++i) {
        for (const std::uint64_t v : decoded[i]) appender.append(v);
        if (columns_done) {
          columns_done[i].fetch_add(1, std::memory_order_relaxed);
        }
      }
      rows = appender.rows();
      appender.flush_to(writer, desc.dataset, desc.column);
      break;
    }
    case ColumnType::F64: {
      std::vector<std::vector<double>> decoded(n);
      std::vector<std::function<void()>> jobs;
      jobs.reserve(n);
      for (std::size_t i = 0; i < n; ++i) {
        jobs.push_back([&decoded, &shards, &desc, i] {
          decoded[i] = shards[i]->read_f64(desc.dataset, desc.column);
        });
      }
      Reader::parallel_decode(jobs);
      F64Appender appender;
      for (std::size_t i = 0; i < n; ++i) {
        for (const double v : decoded[i]) appender.append(v);
        if (columns_done) {
          columns_done[i].fetch_add(1, std::memory_order_relaxed);
        }
      }
      rows = appender.rows();
      appender.flush_to(writer, desc.dataset, desc.column);
      break;
    }
    case ColumnType::U8: {
      std::vector<std::vector<std::uint8_t>> decoded(n);
      std::vector<std::function<void()>> jobs;
      jobs.reserve(n);
      for (std::size_t i = 0; i < n; ++i) {
        jobs.push_back([&decoded, &shards, &desc, i] {
          decoded[i] = shards[i]->read_u8(desc.dataset, desc.column);
        });
      }
      Reader::parallel_decode(jobs);
      U8Appender appender;
      for (std::size_t i = 0; i < n; ++i) {
        for (const std::uint8_t v : decoded[i]) appender.append(v);
        if (columns_done) {
          columns_done[i].fetch_add(1, std::memory_order_relaxed);
        }
      }
      rows = appender.rows();
      appender.flush_to(writer, desc.dataset, desc.column);
      break;
    }
    case ColumnType::Str:
      // Only the events dataset carries strings, and events take the
      // row-merge path below — a Str column here means a layout the
      // merger does not understand.
      throw StoreError(shards[0]->path() + ": unexpected string column '" +
                       desc.dataset + "." + desc.column +
                       "' outside the events dataset");
  }
  return rows;
}

// Events path: rows must interleave across shards, not concatenate. Each
// shard stored its pre-merge rows in canonical stitch order plus a
// src_event column naming each row's telescope event; a k-way merge
// ascending by src_event reproduces exactly the single-process join's
// pre-merge vector (ownership partitions events, so indices never tie),
// after which the concurrent-event merge and the row writer are literally
// save_run's own code.
std::uint64_t merge_events(Writer& writer,
                           const std::vector<const Reader*>& shards,
                           bool merge_concurrent,
                           std::atomic<std::uint64_t>* columns_done) {
  const std::size_t n = shards.size();
  std::vector<std::vector<core::NssetAttackEvent>> rows(n);
  std::vector<std::vector<std::uint64_t>> src(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (!shards[i]->has_column("shard", "src_event")) {
      throw StoreError(shards[i]->path() +
                       ": missing shard.src_event column — not a shard "
                       "store written by generate --shard?");
    }
    rows[i] = read_joined_events(*shards[i]);
    src[i] = shards[i]->read_u64("shard", "src_event");
    if (rows[i].size() != src[i].size()) {
      throw StoreError(shards[i]->path() + ": shard.src_event has " +
                       std::to_string(src[i].size()) +
                       " rows but the events dataset has " +
                       std::to_string(rows[i].size()));
    }
    if (columns_done) columns_done[i].fetch_add(1, std::memory_order_relaxed);
  }

  std::size_t total = 0;
  for (const auto& r : rows) total += r.size();
  std::vector<core::NssetAttackEvent> merged;
  merged.reserve(total);
  std::vector<std::size_t> pos(n, 0);
  while (merged.size() < total) {
    std::size_t best = n;
    for (std::size_t i = 0; i < n; ++i) {
      if (pos[i] >= src[i].size()) continue;
      if (best == n || src[i][pos[i]] < src[best][pos[best]]) {
        best = i;
      } else if (src[i][pos[i]] == src[best][pos[best]]) {
        throw StoreError(shards[i]->path() + ": telescope event " +
                         std::to_string(src[i][pos[i]]) +
                         " was also joined by " + shards[best]->path() +
                         " — shard ownership must partition the events");
      }
    }
    merged.push_back(std::move(rows[best][pos[best]]));
    ++pos[best];
  }

  if (merge_concurrent) {
    merged = core::merge_concurrent_events(std::move(merged));
  }
  write_joined_events(writer, merged);
  return merged.size();
}

}  // namespace

MergeStats merge_stores(const std::string& out_path,
                        const std::vector<std::string>& shard_paths) {
  if (shard_paths.empty()) {
    throw StoreError(out_path + ": merge needs at least one shard store");
  }
  obs::Observer* observer = obs::Observer::installed();
  obs::Tracer* tracer = observer ? &observer->tracer() : nullptr;
  obs::ScopedSpan span(tracer, "store.merge");
  const auto merge_start = std::chrono::steady_clock::now();

  // ---- open every shard and slot it by its manifest index.
  std::vector<std::unique_ptr<Reader>> readers;
  readers.reserve(shard_paths.size());
  for (const std::string& path : shard_paths) {
    readers.push_back(std::make_unique<Reader>(path, ReadMode::Mapped));
  }
  const std::uint32_t count = static_cast<std::uint32_t>(shard_paths.size());
  std::vector<const Reader*> shards(count, nullptr);
  for (const auto& reader : readers) {
    if (!reader->has_meta("shard.index") || !reader->has_meta("shard.count")) {
      throw StoreError(reader->path() +
                       ": not a shard store (no shard.index/shard.count "
                       "manifest; shard stores come from generate --shard "
                       "i/N)");
    }
    const std::uint64_t index = meta_u64(*reader, "shard.index");
    const std::uint64_t n = meta_u64(*reader, "shard.count");
    if (n != count) {
      throw StoreError(reader->path() + ": shard count mismatch — store is "
                       "shard " +
                       std::to_string(index) + " of " + std::to_string(n) +
                       ", but " + std::to_string(count) +
                       " shard stores were given to merge");
    }
    if (index >= count) {
      throw StoreError(reader->path() + ": shard index " +
                       std::to_string(index) + " out of range for " +
                       std::to_string(count) + " shards");
    }
    if (shards[index] != nullptr) {
      throw StoreError(reader->path() + ": duplicate shard index " +
                       std::to_string(index) + " (also claimed by " +
                       shards[index]->path() + ")");
    }
    shards[index] = reader.get();
  }
  // count slots, count readers, no duplicates — every slot is filled.

  // Every block of every shard is checksum-verified before any decode, so
  // a corrupt shard fails loudly here, naming its own path.
  for (const Reader* shard : shards) shard->validate_all();

  // ---- provenance union: the shards must come from ONE generate config
  // (including run.threads — the merged file reproduces a single-process
  // run at that thread count).
  const Reader& first = *shards[0];
  for (const auto& [key, value] : first.meta()) {
    if (is_result_key(key) || is_shard_key(key)) continue;
    for (std::uint32_t s = 1; s < count; ++s) {
      if (!shards[s]->has_meta(key) || shards[s]->meta_value(key) != value) {
        throw StoreError("merge provenance mismatch on '" + key + "': " +
                         first.path() + " says '" + value + "', " +
                         shards[s]->path() + " says '" +
                         shards[s]->meta_or(key, "<missing>") +
                         "' — shards must come from one generate "
                         "configuration");
      }
    }
  }
  for (std::uint32_t s = 1; s < count; ++s) {
    if (shards[s]->columns().size() != first.columns().size()) {
      throw StoreError(shards[s]->path() + ": column count differs from " +
                       first.path() +
                       " — shards were written by different builds?");
    }
  }

  // ---- recomputed result/stat counts: whole-world counts must agree
  // across shards, per-shard dispositions sum.
  const auto equal_across = [&](std::string_view key) {
    const std::uint64_t v = meta_u64(first, key);
    for (std::uint32_t s = 1; s < count; ++s) {
      if (meta_u64(*shards[s], key) != v) {
        throw StoreError("merge provenance mismatch on '" + std::string(key) +
                         "': " + first.path() + " and " + shards[s]->path() +
                         " disagree — shards must come from one generate "
                         "configuration");
      }
    }
    return v;
  };
  const auto summed = [&](std::string_view key) {
    std::uint64_t v = 0;
    for (const Reader* shard : shards) v += meta_u64(*shard, key);
    return v;
  };

  const std::uint64_t events_total = equal_across("result.events");
  const std::uint64_t owned_total = summed("stats.total_events");
  if (owned_total != events_total) {
    throw StoreError(out_path + ": shard ownership does not cover the event "
                     "list (" +
                     std::to_string(owned_total) + " events owned across " +
                     std::to_string(count) + " shards, " +
                     std::to_string(events_total) +
                     " stitched) — were all shards generated with the same "
                     "i/N partition?");
  }

  std::vector<std::pair<std::string, std::string>> computed;
  computed.emplace_back("result.attacks",
                        std::to_string(equal_across("result.attacks")));
  computed.emplace_back("result.events", std::to_string(events_total));
  computed.emplace_back("stats.total_events", std::to_string(owned_total));
  for (const std::string_view key :
       {"result.feed_records", "result.swept_measurements",
        "stats.open_resolver_filtered", "stats.non_dns",
        "stats.not_seen_day_before", "stats.below_measurement_floor",
        "stats.no_baseline", "stats.dns_events"}) {
    computed.emplace_back(std::string(key), std::to_string(summed(key)));
  }

  // ---- meta replay in shard 0's footer order (save_run's insertion
  // order), manifest keys stripped, recomputed values substituted.
  // result.joined/stats.joined temporarily carry shard 0's values and are
  // overwritten in place after the events merge — add_meta keeps the
  // first insertion's footer position, which is what byte-identity needs.
  Writer writer(out_path);
  for (const auto& [key, value] : first.meta()) {
    if (is_shard_key(key)) continue;
    std::string_view out_value = value;
    for (const auto& [ckey, cvalue] : computed) {
      if (ckey == key) {
        out_value = cvalue;
        break;
      }
    }
    writer.add_meta(key, out_value);
  }

  // Per-shard progress sources for the watchdog/telemetry: columns of
  // each shard consumed so far.
  obs::ProgressRegistry* progress =
      observer ? &observer->progress_sources() : nullptr;
  const auto columns_done =
      std::make_unique<std::atomic<std::uint64_t>[]>(count);
  for (std::uint32_t s = 0; s < count; ++s) {
    columns_done[s].store(0, std::memory_order_relaxed);
  }
  std::vector<std::unique_ptr<obs::ScopedProgressSource>> shard_sources;
  if (progress) {
    shard_sources.reserve(count);
    for (std::uint32_t s = 0; s < count; ++s) {
      shard_sources.push_back(std::make_unique<obs::ScopedProgressSource>(
          progress, "merge.shard" + std::to_string(s),
          [&columns_done, s] {
            return columns_done[s].load(std::memory_order_relaxed);
          }));
    }
  }

  MergeStats stats;
  stats.shards = count;
  for (const Reader* shard : shards) stats.bytes_read += shard->file_size();

  // ---- column merge in shard 0's block order == save_run's block order
  // (feed, daily, window, ns_seen, events), with the manifest dataset
  // dropped and the events dataset row-merged as one unit.
  const bool merge_concurrent = meta_u64(first, "join.merge_concurrent") != 0;
  bool events_merged = false;
  for (const ColumnDesc& desc : first.columns()) {
    if (desc.dataset == "shard") continue;  // manifest column, not data
    if (desc.dataset == "events") {
      if (events_merged) continue;
      events_merged = true;
      stats.events_out =
          merge_events(writer, shards, merge_concurrent, columns_done.get());
      continue;
    }
    stats.rows_merged +=
        merge_column(writer, shards, desc, columns_done.get());
  }

  writer.add_meta("result.joined", std::to_string(stats.events_out));
  writer.add_meta("stats.joined", std::to_string(stats.events_out));
  if (!writer.finish()) {
    throw StoreError(out_path + ": write failed during merge finish");
  }
  stats.bytes_written = writer.bytes_written();

  span.set_items(stats.rows_merged + stats.events_out);
  if (observer) {
    observer->pipeline.merge_shards.set(static_cast<double>(count));
    observer->pipeline.merge_rows.inc(stats.rows_merged + stats.events_out);
    observer->pipeline.merge_bytes_read.set(
        static_cast<double>(stats.bytes_read));
    observer->pipeline.merge_bytes_written.set(
        static_cast<double>(stats.bytes_written));
    const double merge_ns = static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - merge_start)
            .count());
    if (merge_ns > 0.0) {
      observer->pipeline.merge_MBps.set(
          static_cast<double>(stats.bytes_written) * 1e3 / merge_ns);
    }
  }
  return stats;
}

}  // namespace ddos::store
