#include "store/epoch.h"

#include <bit>

namespace ddos::store {

void U64Appender::append(std::uint64_t v) {
  switch (encoding_) {
    case Encoding::DeltaVarint:
      put_varint(payload_,
                 zigzag_encode(static_cast<std::int64_t>(v - prev_)));
      prev_ = v;
      break;
    case Encoding::Varint:
      put_varint(payload_, v);
      break;
    case Encoding::Fixed:
      put_fixed64(payload_, v);
      break;
    case Encoding::StringBlock:
      throw StoreError("u64 column cannot use string-block encoding");
  }
  ++rows_;
}

void F64Appender::append(double v) {
  put_fixed64(payload_, std::bit_cast<std::uint64_t>(v));
  ++rows_;
}

void FeedColumnsAppender::append(const telescope::RSDoSRecord& record) {
  window_.append(static_cast<std::uint64_t>(record.window));
  victim_.append(record.victim.value());
  slash16_.append(record.distinct_slash16);
  protocol_.append(static_cast<std::uint8_t>(record.protocol));
  first_port_.append(record.first_port);
  unique_ports_.append(record.unique_ports);
  max_ppm_.append(record.max_ppm);
  packets_.append(record.packets);
}

void FeedColumnsAppender::flush_to(Writer& writer) const {
  window_.flush_to(writer, "feed", "window");
  victim_.flush_to(writer, "feed", "victim");
  slash16_.flush_to(writer, "feed", "slash16");
  protocol_.flush_to(writer, "feed", "protocol");
  first_port_.flush_to(writer, "feed", "first_port");
  unique_ports_.flush_to(writer, "feed", "unique_ports");
  max_ppm_.flush_to(writer, "feed", "max_ppm");
  packets_.flush_to(writer, "feed", "packets");
}

void AggregateColumnsAppender::append(std::uint64_t key,
                                      const openintel::Aggregate& agg) {
  key_.append(key);
  measured_.append(agg.measured);
  ok_.append(agg.ok);
  timeout_.append(agg.timeout);
  servfail_.append(agg.servfail);
  const util::RunningStats::Raw raw = agg.rtt.raw();
  rtt_n_.append(raw.n);
  rtt_sum_.append(raw.sum);
  rtt_m_.append(raw.m);
  rtt_m2_.append(raw.m2);
  rtt_min_.append(raw.min);
  rtt_max_.append(raw.max);
}

void AggregateColumnsAppender::flush_to(Writer& writer) const {
  key_.flush_to(writer, dataset_, "key");
  measured_.flush_to(writer, dataset_, "measured");
  ok_.flush_to(writer, dataset_, "ok");
  timeout_.flush_to(writer, dataset_, "timeout");
  servfail_.flush_to(writer, dataset_, "servfail");
  rtt_n_.flush_to(writer, dataset_, "rtt_n");
  rtt_sum_.flush_to(writer, dataset_, "rtt_sum");
  rtt_m_.flush_to(writer, dataset_, "rtt_m");
  rtt_m2_.flush_to(writer, dataset_, "rtt_m2");
  rtt_min_.flush_to(writer, dataset_, "rtt_min");
  rtt_max_.flush_to(writer, dataset_, "rtt_max");
}

void NsSeenAppender::append(netsim::DayIndex day, netsim::IPv4Addr ip) {
  day_.append(static_cast<std::uint64_t>(day));
  ip_.append(ip.value());
}

void NsSeenAppender::flush_to(Writer& writer) const {
  day_.flush_to(writer, "ns_seen", "day");
  ip_.flush_to(writer, "ns_seen", "ip");
}

}  // namespace ddos::store
