// DRS reader — loads a store file, parses the footer index, and decodes
// column blocks on demand. Every access validates the block's CRC32C
// before decoding; validate_all() checks every block, fanning the
// checksum work out across the exec worker pool. All failure modes
// (bad magic, unsupported version, truncation, checksum mismatch,
// missing columns) throw StoreError with a message naming the problem.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "store/format.h"

namespace ddos::store {

class Reader {
 public:
  /// Reads and verifies `path` (header magic/version, trailer, footer
  /// checksum, block-extent sanity). Throws StoreError on any defect.
  explicit Reader(const std::string& path);

  const std::vector<ColumnDesc>& columns() const { return columns_; }
  const std::vector<std::pair<std::string, std::string>>& meta() const {
    return meta_;
  }

  bool has_meta(std::string_view key) const;
  /// Metadata value; throws StoreError when the key is absent.
  std::string meta_value(std::string_view key) const;
  /// Metadata value or `fallback` when absent.
  std::string meta_or(std::string_view key, std::string_view fallback) const;

  bool has_column(std::string_view dataset, std::string_view column) const;
  /// Footer entry for (dataset, column); throws when absent.
  const ColumnDesc& column(std::string_view dataset,
                           std::string_view column) const;
  /// Row count shared by a dataset's columns; throws when the dataset is
  /// absent or its columns disagree.
  std::uint64_t dataset_rows(std::string_view dataset) const;

  /// Decode one column (CRC-checked). Type must match the footer entry.
  std::vector<std::uint64_t> read_u64(std::string_view dataset,
                                      std::string_view column) const;
  std::vector<double> read_f64(std::string_view dataset,
                               std::string_view column) const;
  std::vector<std::uint8_t> read_u8(std::string_view dataset,
                                    std::string_view column) const;
  std::vector<std::string> read_strings(std::string_view dataset,
                                        std::string_view column) const;

  /// Run `jobs` (independent column decodes) across the exec pool; each
  /// job must write only its own output slot. Dataset readers use this to
  /// fan block decoding out.
  static void parallel_decode(const std::vector<std::function<void()>>& jobs);

  /// Validate every block's CRC32C in parallel; throws on the first
  /// mismatch naming the offending dataset/column.
  void validate_all() const;

  std::uint64_t file_size() const { return data_.size(); }
  const std::string& path() const { return path_; }

 private:
  std::string_view payload(const ColumnDesc& desc) const;
  /// CRC-check `desc`'s payload; throws StoreError on mismatch.
  void check_crc(const ColumnDesc& desc) const;

  std::string path_;
  std::string data_;
  std::vector<ColumnDesc> columns_;
  std::vector<std::pair<std::string, std::string>> meta_;
};

}  // namespace ddos::store
