// DRS reader — loads a store file, parses the footer index, and decodes
// column blocks on demand. Two backing modes share one API:
//
//   Buffered  the whole file is slurped into an owned string (the
//             original behaviour; works on any filesystem).
//   Mapped    the file is mmap'd read-only and block payloads are views
//             straight into the mapping — no copy of the block region.
//             Falls back to Buffered when mmap is unavailable.
//
// In both modes each block's CRC32C is verified lazily on first touch
// and the verification is recorded per block, so a block touched many
// times (or scanned column-by-column) is checksummed exactly once.
// validate_all() checks every block, fanning the checksum work out
// across the exec worker pool. All failure modes (bad magic,
// unsupported version, truncation, checksum mismatch, missing columns)
// throw StoreError with a message naming the problem.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "store/format.h"

namespace ddos::store {

enum class ReadMode : std::uint8_t {
  Buffered = 0,  // copy the file into memory
  Mapped = 1,    // mmap read-only; zero-copy block payloads
};

class Reader {
 public:
  /// Reads and verifies `path` (header magic/version, trailer, footer
  /// checksum, block-extent sanity). Throws StoreError on any defect.
  /// Block CRCs are NOT checked here — they verify lazily on first
  /// touch so a mapped open stays O(footer).
  explicit Reader(const std::string& path,
                  ReadMode mode = ReadMode::Buffered);
  ~Reader();

  Reader(const Reader&) = delete;
  Reader& operator=(const Reader&) = delete;

  /// True when the file is backed by an mmap (mode Mapped and the map
  /// succeeded); false after the buffered fallback.
  bool mapped() const { return map_ != nullptr; }

  const std::vector<ColumnDesc>& columns() const { return columns_; }
  const std::vector<std::pair<std::string, std::string>>& meta() const {
    return meta_;
  }

  bool has_meta(std::string_view key) const;
  /// Metadata value; throws StoreError when the key is absent.
  std::string meta_value(std::string_view key) const;
  /// Metadata value or `fallback` when absent.
  std::string meta_or(std::string_view key, std::string_view fallback) const;

  bool has_column(std::string_view dataset, std::string_view column) const;
  /// Footer entry for (dataset, column); throws when absent.
  const ColumnDesc& column(std::string_view dataset,
                           std::string_view column) const;
  /// Row count shared by a dataset's columns; throws when the dataset is
  /// absent or its columns disagree.
  std::uint64_t dataset_rows(std::string_view dataset) const;

  /// Decode one column (CRC-checked). Type must match the footer entry.
  std::vector<std::uint64_t> read_u64(std::string_view dataset,
                                      std::string_view column) const;
  std::vector<double> read_f64(std::string_view dataset,
                               std::string_view column) const;
  std::vector<std::uint8_t> read_u8(std::string_view dataset,
                                    std::string_view column) const;
  std::vector<std::string> read_strings(std::string_view dataset,
                                        std::string_view column) const;

  /// CRC-checked view of a block's raw payload — bytes of the mapping
  /// itself in Mapped mode, valid for the Reader's lifetime. The
  /// columnar scan layer (store/scan.h) decodes straight from this.
  std::string_view verified_payload(const ColumnDesc& desc) const {
    check_crc(desc);
    return payload(desc);
  }

  /// Run `jobs` (independent column decodes) across the exec pool; each
  /// job must write only its own output slot. Dataset readers use this to
  /// fan block decoding out.
  static void parallel_decode(const std::vector<std::function<void()>>& jobs);

  /// Validate every block's CRC32C in parallel; throws on the first
  /// mismatch naming the offending dataset/column. Blocks already
  /// verified lazily are not re-hashed.
  void validate_all() const;

  /// Blocks whose CRC has been verified so far (monotonic; at most one
  /// count per block regardless of how often it is read).
  std::uint64_t lazy_crc_checks() const {
    return lazy_checks_.load(std::memory_order_relaxed);
  }

  std::uint64_t file_size() const { return data_.size(); }
  const std::string& path() const { return path_; }

 private:
  std::string_view payload(const ColumnDesc& desc) const;
  /// CRC-check `desc`'s payload once; throws StoreError on mismatch.
  void check_crc(const ColumnDesc& desc) const;
  void parse(std::string_view data);

  std::string path_;
  std::string buffer_;         // Buffered backing (empty when mapped)
  void* map_ = nullptr;        // Mapped backing
  std::size_t map_size_ = 0;
  std::string_view data_;      // whichever backing is live
  std::vector<ColumnDesc> columns_;
  std::vector<std::pair<std::string, std::string>> meta_;
  // One flag per column block: 1 once its CRC verified OK. Failed checks
  // never set the flag, so a corrupt block throws on every touch.
  mutable std::unique_ptr<std::atomic<std::uint8_t>[]> crc_checked_;
  mutable std::atomic<std::uint64_t> lazy_checks_{0};
};

}  // namespace ddos::store
