#include "store/checksum.h"

#include <array>

namespace ddos::store {

namespace {

constexpr std::uint32_t kPoly = 0x82F63B78u;  // CRC32C, reflected

constexpr std::array<std::uint32_t, 256> build_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1) ? (crc >> 1) ^ kPoly : crc >> 1;
    }
    table[i] = crc;
  }
  return table;
}

constexpr std::array<std::uint32_t, 256> kTable = build_table();

}  // namespace

std::uint32_t crc32c(const void* data, std::size_t n, std::uint32_t seed) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t crc = ~seed;
  for (std::size_t i = 0; i < n; ++i) {
    crc = kTable[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace ddos::store
