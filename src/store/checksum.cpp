#include "store/checksum.h"

#include <array>
#include <cstring>

#if defined(__x86_64__) && defined(__GNUC__)
#include <nmmintrin.h>
#define DDOS_CRC32C_HW 1
#endif

namespace ddos::store {

namespace {

constexpr std::uint32_t kPoly = 0x82F63B78u;  // CRC32C, reflected

// Slice-by-8: eight derived tables let the hot loop fold 8 input bytes
// per iteration with no loop-carried byte dependency chain. Table 0 is
// the classic byte-at-a-time table; table k maps "byte seen k positions
// earlier" contributions, so the tables compose to the same polynomial
// division as the scalar loop (outputs are bit-identical).
struct Tables {
  std::uint32_t t[8][256];
};

constexpr Tables build_tables() {
  Tables tables{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1) ? (crc >> 1) ^ kPoly : crc >> 1;
    }
    tables.t[0][i] = crc;
  }
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = tables.t[0][i];
    for (int k = 1; k < 8; ++k) {
      crc = tables.t[0][crc & 0xFFu] ^ (crc >> 8);
      tables.t[k][i] = crc;
    }
  }
  return tables;
}

constexpr Tables kTables = build_tables();

#ifdef DDOS_CRC32C_HW
// SSE4.2 path: the x86 crc32 instruction computes exactly CRC32C over
// the same reflected state the tables carry, so the two paths are
// bit-identical — the software tables stay the reference (and the only
// path on other ISAs or pre-Nehalem parts, selected once at startup).
__attribute__((target("sse4.2"))) std::uint32_t crc32c_hw(const void* data,
                                                          std::size_t n,
                                                          std::uint32_t seed) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t crc = ~seed;
  while (n > 0 && (reinterpret_cast<std::uintptr_t>(p) & 7u) != 0) {
    crc = _mm_crc32_u8(crc, *p++);
    --n;
  }
  std::uint64_t crc64 = crc;
  while (n >= 8) {
    std::uint64_t word;
    std::memcpy(&word, p, 8);
    crc64 = _mm_crc32_u64(crc64, word);
    p += 8;
    n -= 8;
  }
  crc = static_cast<std::uint32_t>(crc64);
  while (n > 0) {
    crc = _mm_crc32_u8(crc, *p++);
    --n;
  }
  return ~crc;
}

const bool kHaveHwCrc = __builtin_cpu_supports("sse4.2");
#endif

std::uint32_t crc32c_sw(const void* data, std::size_t n, std::uint32_t seed) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t crc = ~seed;
  // Align to 8 bytes so the wide loop can load aligned words.
  while (n > 0 && (reinterpret_cast<std::uintptr_t>(p) & 7u) != 0) {
    crc = kTables.t[0][(crc ^ *p++) & 0xFFu] ^ (crc >> 8);
    --n;
  }
  while (n >= 8) {
    std::uint64_t word;
    std::memcpy(&word, p, 8);  // little-endian load; x86/arm64 targets
    word ^= crc;
    crc = kTables.t[7][word & 0xFFu] ^ kTables.t[6][(word >> 8) & 0xFFu] ^
          kTables.t[5][(word >> 16) & 0xFFu] ^
          kTables.t[4][(word >> 24) & 0xFFu] ^
          kTables.t[3][(word >> 32) & 0xFFu] ^
          kTables.t[2][(word >> 40) & 0xFFu] ^
          kTables.t[1][(word >> 48) & 0xFFu] ^
          kTables.t[0][(word >> 56) & 0xFFu];
    p += 8;
    n -= 8;
  }
  while (n > 0) {
    crc = kTables.t[0][(crc ^ *p++) & 0xFFu] ^ (crc >> 8);
    --n;
  }
  return ~crc;
}

}  // namespace

std::uint32_t crc32c(const void* data, std::size_t n, std::uint32_t seed) {
#ifdef DDOS_CRC32C_HW
  if (kHaveHwCrc) return crc32c_hw(data, n, seed);
#endif
  return crc32c_sw(data, n, seed);
}

}  // namespace ddos::store
