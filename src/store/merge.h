// Deterministic shard-store compaction — the "compact" stage of the
// plan/execute/compact pipeline (scenario/plan.h). merge_stores k-way
// merges the DRS shard files written by `generate --shard i/N` into one
// store byte-identical to a single-process `generate --store` of the
// same config, for any shard count and any thread count:
//
//   * meta replays shard 0's footer order with the result/stat counts
//     recomputed — whole-world counts (attacks, telescope events) are
//     validated equal across shards, per-shard dispositions are summed,
//     and the joined counts are re-counted after the concurrent merge;
//   * the time-major datasets (feed by construction; daily, window and
//     ns_seen by the day partition) concatenate in shard-index order —
//     which IS globally sorted order — re-encoded through the epoch
//     appenders, whose chunk-wise appends are byte-identical to
//     save_run's one-shot encodes (every block re-CRC'd as written);
//   * the events dataset k-way merges by each row's source telescope
//     event index (the canonical stitch order the single-process join
//     emits) and then re-applies the concurrent-event merge.
//
// Every defect — corrupt block, non-shard input, wrong or duplicate
// shard index, provenance mismatch, overlapping day ranges — throws
// StoreError naming the offending shard file.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace ddos::store {

struct MergeStats {
  std::uint32_t shards = 0;
  std::uint64_t rows_merged = 0;    // column values appended (non-events)
  std::uint64_t events_out = 0;     // joined events after the concurrent merge
  std::uint64_t bytes_read = 0;     // summed shard file sizes
  std::uint64_t bytes_written = 0;  // merged file size
};

/// Merge `shard_paths` (any order — each store carries its own
/// shard.index manifest) into `out_path`. The set must be exactly the N
/// shards of one `generate --shard i/N` partition, all from the same
/// config and --threads. Throws StoreError on any defect.
MergeStats merge_stores(const std::string& out_path,
                        const std::vector<std::string>& shard_paths);

}  // namespace ddos::store
