// Columnar scan layer over a store::Reader — the zero-copy fast path the
// analysis kernels (core/columnar.h) run on.
//
//   * Fixed-width columns (f64, u8, and Fixed-encoded u64) are returned
//     as spans directly over the reader's backing — in Mapped mode that
//     is the mmap itself, so no byte of the block is ever copied. Format
//     v3 pads every block to an 8-byte file offset, so the alignment
//     check in scan_f64/scan_u64 succeeds on any v3 store; a misaligned
//     payload (never produced by our writer) falls back to an arena copy.
//   * Varint and delta-varint columns decode into reusable ColumnArena
//     buffers with an unrolled LEB128 inner loop and a branch-light
//     delta prefix-sum — one resize per column, no per-row allocation.
//   * String columns decode to SoA offsets (starts/lens) into the block
//     payload; the bytes themselves stay in the mapping.
//
// Every scan CRC-checks its block via Reader::verified_payload, which
// verifies lazily and exactly once per block. Spans borrow from the
// Reader and the arena: keep both alive while a frame is in use.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/columnar.h"
#include "store/reader.h"

namespace ddos::store {

/// Named decode buffers keyed by dataset.column, reused across scans so a
/// re-analysis of the same store (threshold sweeps, rejoin checks) does
/// zero steady-state allocation. Buffers are heap-stable: growing the
/// arena never invalidates spans handed out earlier.
class ColumnArena {
 public:
  /// Buffer for (dataset, column[, aux]); created on first use, reused
  /// (capacity kept) afterwards.
  std::vector<std::uint64_t>& u64_slot(std::string_view dataset,
                                       std::string_view column,
                                       std::string_view aux = {});
  std::vector<double>& f64_slot(std::string_view dataset,
                                std::string_view column);

  /// Distinct buffers allocated so far (stable across repeat scans —
  /// the arena-reuse property tests pin).
  std::size_t slots() const { return u64_.size() + f64_.size(); }

 private:
  std::unordered_map<std::string, std::unique_ptr<std::vector<std::uint64_t>>>
      u64_;
  std::unordered_map<std::string, std::unique_ptr<std::vector<double>>> f64_;
};

// ---- fast block decoders (exposed for bench_micro_decode) ------------

/// `rows` LEB128 varints; unrolled hot loop, canonicality-checked like
/// format.h's get_varint. Throws StoreError on truncation/overflow or
/// trailing bytes.
void decode_varint_block(std::string_view payload, std::uint64_t rows,
                         std::vector<std::uint64_t>& out);
/// As above plus the zigzag delta prefix-sum (DeltaVarint encoding).
void decode_delta_varint_block(std::string_view payload, std::uint64_t rows,
                               std::vector<std::uint64_t>& out);
/// String block to SoA offsets: starts[i]/lens[i] slice row i out of
/// `payload` itself — the string bytes are not copied.
void decode_string_offsets(std::string_view payload, std::uint64_t rows,
                           std::vector<std::uint64_t>& starts,
                           std::vector<std::uint64_t>& lens);

// ---- column scans ----------------------------------------------------

std::span<const std::uint64_t> scan_u64(const Reader& reader,
                                        const ColumnDesc& desc,
                                        ColumnArena& arena);
std::span<const double> scan_f64(const Reader& reader, const ColumnDesc& desc,
                                 ColumnArena& arena);
std::span<const std::uint8_t> scan_u8(const Reader& reader,
                                      const ColumnDesc& desc);
core::StringColumnView scan_strings(const Reader& reader,
                                    const ColumnDesc& desc,
                                    ColumnArena& arena);

/// Columnar view of the joined "events" dataset; spans borrow from
/// `reader` and `arena`.
core::EventFrame read_event_frame(const Reader& reader, ColumnArena& arena);

/// Decode every column of every dataset once (block decodes fan out
/// across the exec pool). Returns the payload bytes touched — the
/// numerator of a full-file scan-throughput measurement.
std::uint64_t scan_all(const Reader& reader, ColumnArena& arena);

}  // namespace ddos::store
