// Per-epoch incremental column encoders for the streaming pipeline. The
// materialized save path (dataset.cpp) encodes each column from a complete
// in-memory vector; the streaming driver instead retires one day-epoch at
// a time and must release that state immediately. These appenders keep
// only the growing encoded payload per column — DeltaVarint carries its
// `prev` across append calls, so feeding the same values in the same order
// chunk-by-chunk produces byte-identical payloads to the one-shot
// encode_u64_column/encode_f64_column, which is what keeps a streamed DRS
// file bit-for-bit equal to a materialized one.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "openintel/storage.h"
#include "store/format.h"
#include "store/writer.h"
#include "telescope/rsdos.h"

namespace ddos::store {

/// Incrementally builds one u64 column payload (DeltaVarint or Varint).
class U64Appender {
 public:
  explicit U64Appender(Encoding encoding = Encoding::DeltaVarint)
      : encoding_(encoding) {}

  void append(std::uint64_t v);

  void flush_to(Writer& writer, std::string_view dataset,
                std::string_view column) const {
    writer.add_encoded(dataset, column, ColumnType::U64, encoding_, rows_,
                       payload_);
  }

  std::uint64_t rows() const { return rows_; }

 private:
  Encoding encoding_;
  std::string payload_;
  std::uint64_t rows_ = 0;
  std::uint64_t prev_ = 0;  // DeltaVarint carry across appends
};

/// Incrementally builds one f64 column payload (Fixed, bit-exact).
class F64Appender {
 public:
  void append(double v);

  void flush_to(Writer& writer, std::string_view dataset,
                std::string_view column) const {
    writer.add_encoded(dataset, column, ColumnType::F64, Encoding::Fixed,
                       rows_, payload_);
  }

  std::uint64_t rows() const { return rows_; }

 private:
  std::string payload_;
  std::uint64_t rows_ = 0;
};

/// Incrementally builds one u8 column payload (Fixed: raw bytes, exactly
/// encode_u8_column's layout).
class U8Appender {
 public:
  void append(std::uint8_t v) {
    payload_.push_back(static_cast<char>(v));
    ++rows_;
  }

  void flush_to(Writer& writer, std::string_view dataset,
                std::string_view column) const {
    writer.add_encoded(dataset, column, ColumnType::U8, Encoding::Fixed,
                       rows_, payload_);
  }

  std::uint64_t rows() const { return rows_; }

 private:
  std::string payload_;
  std::uint64_t rows_ = 0;
};

/// The 8 columns of the "feed" dataset, append-per-record. flush_to emits
/// blocks in exactly the column order of dataset.cpp's write_feed_records,
/// so a streamed store keeps save_run's block layout byte for byte while
/// the record vector itself is never materialised.
class FeedColumnsAppender {
 public:
  void append(const telescope::RSDoSRecord& record);
  void flush_to(Writer& writer) const;

  std::uint64_t rows() const { return window_.rows(); }

 private:
  U64Appender window_{Encoding::DeltaVarint};
  U64Appender victim_{Encoding::Varint};
  U64Appender slash16_{Encoding::Varint};
  U8Appender protocol_;
  U64Appender first_port_{Encoding::Varint};
  U64Appender unique_ports_{Encoding::Varint};
  F64Appender max_ppm_;
  U64Appender packets_{Encoding::Varint};
};

/// The 11 columns of one aggregate dataset ("daily" or "window"),
/// append-per-row. flush_to emits blocks in exactly the column order of
/// dataset.cpp's write_aggregates.
class AggregateColumnsAppender {
 public:
  explicit AggregateColumnsAppender(std::string dataset)
      : dataset_(std::move(dataset)) {}

  void append(std::uint64_t key, const openintel::Aggregate& agg);
  void flush_to(Writer& writer) const;

  std::uint64_t rows() const { return key_.rows(); }

 private:
  std::string dataset_;
  U64Appender key_{Encoding::DeltaVarint};
  U64Appender measured_{Encoding::Varint};
  U64Appender ok_{Encoding::Varint};
  U64Appender timeout_{Encoding::Varint};
  U64Appender servfail_{Encoding::Varint};
  U64Appender rtt_n_{Encoding::Varint};
  F64Appender rtt_sum_;
  F64Appender rtt_m_;
  F64Appender rtt_m2_;
  F64Appender rtt_min_;
  F64Appender rtt_max_;
};

/// The "ns_seen" dataset (day, ip), append-per-row.
class NsSeenAppender {
 public:
  void append(netsim::DayIndex day, netsim::IPv4Addr ip);
  void flush_to(Writer& writer) const;

  std::uint64_t rows() const { return day_.rows(); }

 private:
  U64Appender day_{Encoding::DeltaVarint};
  U64Appender ip_{Encoding::DeltaVarint};
};

}  // namespace ddos::store
