// CRC32C (Castagnoli, reflected polynomial 0x82F63B78) — the per-block
// checksum of the DRS container. Software slice-by-one implementation with
// a lazily built 256-entry table; fast enough for the store's block sizes
// and fully portable (no SSE4.2 requirement).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace ddos::store {

/// CRC32C of `n` bytes, continuing from `seed` (pass a previous return
/// value to checksum data in chunks). Seed 0 starts a fresh checksum.
std::uint32_t crc32c(const void* data, std::size_t n, std::uint32_t seed = 0);

inline std::uint32_t crc32c(std::string_view bytes, std::uint32_t seed = 0) {
  return crc32c(bytes.data(), bytes.size(), seed);
}

}  // namespace ddos::store
