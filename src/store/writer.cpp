#include "store/writer.h"

#include "store/checksum.h"

namespace ddos::store {

Writer::Writer(const std::string& path)
    : out_(path, std::ios::binary | std::ios::trunc) {
  std::string header;
  put_fixed32(header, kMagic);
  put_fixed32(header, kFormatVersion);
  put_fixed64(header, 0);  // reserved
  out_.write(header.data(), static_cast<std::streamsize>(header.size()));
  offset_ = header.size();
}

void Writer::add_meta(std::string_view key, std::string_view value) {
  for (auto& [k, v] : meta_) {
    if (k == key) {
      v = value;
      return;
    }
  }
  meta_.emplace_back(key, value);
}

void Writer::append_block(std::string_view dataset, std::string_view column,
                          ColumnType type, Encoding encoding,
                          std::uint64_t rows, const std::string& payload) {
  if (finished_) throw StoreError("Writer: add after finish()");
  // Format v3: zero-pad so every payload starts 8-byte aligned and a
  // mapped reader can hand out Fixed f64 columns as aligned spans.
  static constexpr char kPad[8] = {};
  if (std::size_t rem = offset_ % 8; rem != 0) {
    std::size_t pad = 8 - rem;
    out_.write(kPad, static_cast<std::streamsize>(pad));
    offset_ += pad;
  }
  ColumnDesc desc;
  desc.dataset = dataset;
  desc.column = column;
  desc.type = type;
  desc.encoding = encoding;
  desc.rows = rows;
  desc.offset = offset_;
  desc.size = payload.size();
  desc.crc = crc32c(payload);
  out_.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  offset_ += payload.size();
  columns_.push_back(std::move(desc));
}

void Writer::add_u64(std::string_view dataset, std::string_view column,
                     std::span<const std::uint64_t> values,
                     Encoding encoding) {
  append_block(dataset, column, ColumnType::U64, encoding, values.size(),
               encode_u64_column(values, encoding));
}

void Writer::add_f64(std::string_view dataset, std::string_view column,
                     std::span<const double> values) {
  append_block(dataset, column, ColumnType::F64, Encoding::Fixed,
               values.size(), encode_f64_column(values));
}

void Writer::add_u8(std::string_view dataset, std::string_view column,
                    std::span<const std::uint8_t> values) {
  append_block(dataset, column, ColumnType::U8, Encoding::Fixed,
               values.size(), encode_u8_column(values));
}

void Writer::add_strings(std::string_view dataset, std::string_view column,
                         std::span<const std::string> values) {
  append_block(dataset, column, ColumnType::Str, Encoding::StringBlock,
               values.size(), encode_string_column(values));
}

bool Writer::finish() {
  if (finished_) return ok();
  finished_ = true;

  std::string footer;
  put_varint(footer, meta_.size());
  for (const auto& [key, value] : meta_) {
    put_string(footer, key);
    put_string(footer, value);
  }
  put_varint(footer, columns_.size());
  for (const ColumnDesc& c : columns_) {
    put_string(footer, c.dataset);
    put_string(footer, c.column);
    footer.push_back(static_cast<char>(c.type));
    footer.push_back(static_cast<char>(c.encoding));
    put_varint(footer, c.rows);
    put_varint(footer, c.offset);
    put_varint(footer, c.size);
    put_fixed32(footer, c.crc);
  }

  std::string trailer;
  put_fixed64(trailer, footer.size());
  put_fixed32(trailer, crc32c(footer));
  put_fixed32(trailer, kMagic);

  out_.write(footer.data(), static_cast<std::streamsize>(footer.size()));
  out_.write(trailer.data(), static_cast<std::streamsize>(trailer.size()));
  offset_ += footer.size() + trailer.size();
  out_.flush();
  return ok();
}

}  // namespace ddos::store
