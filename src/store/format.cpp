#include "store/format.h"

#include <bit>

namespace ddos::store {

const char* to_string(ColumnType t) {
  switch (t) {
    case ColumnType::U64: return "u64";
    case ColumnType::F64: return "f64";
    case ColumnType::U8: return "u8";
    case ColumnType::Str: return "str";
  }
  return "?";
}

const char* to_string(Encoding e) {
  switch (e) {
    case Encoding::DeltaVarint: return "delta-varint";
    case Encoding::Varint: return "varint";
    case Encoding::Fixed: return "fixed";
    case Encoding::StringBlock: return "string-block";
  }
  return "?";
}

void put_varint(std::string& out, std::uint64_t v) {
  while (v >= 0x80u) {
    out.push_back(static_cast<char>((v & 0x7Fu) | 0x80u));
    v >>= 7;
  }
  out.push_back(static_cast<char>(v));
}

bool get_varint(std::string_view buf, std::size_t& pos, std::uint64_t& v) {
  v = 0;
  for (int shift = 0; shift < 64; shift += 7) {
    if (pos >= buf.size()) return false;
    const auto byte = static_cast<std::uint8_t>(buf[pos++]);
    v |= static_cast<std::uint64_t>(byte & 0x7Fu) << shift;
    if ((byte & 0x80u) == 0) {
      // Reject non-canonical 10-byte varints whose top bits overflow.
      if (shift == 63 && byte > 1) return false;
      return true;
    }
  }
  return false;
}

void put_fixed32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>(v >> (8 * i)));
}

bool get_fixed32(std::string_view buf, std::size_t& pos, std::uint32_t& v) {
  if (pos + 4 > buf.size()) return false;
  v = 0;
  for (int i = 0; i < 4; ++i)
    v |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(buf[pos + i]))
         << (8 * i);
  pos += 4;
  return true;
}

void put_fixed64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>(v >> (8 * i)));
}

bool get_fixed64(std::string_view buf, std::size_t& pos, std::uint64_t& v) {
  if (pos + 8 > buf.size()) return false;
  v = 0;
  for (int i = 0; i < 8; ++i)
    v |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(buf[pos + i]))
         << (8 * i);
  pos += 8;
  return true;
}

void put_string(std::string& out, std::string_view s) {
  put_varint(out, s.size());
  out.append(s);
}

bool get_string(std::string_view buf, std::size_t& pos, std::string& s) {
  std::uint64_t len = 0;
  if (!get_varint(buf, pos, len)) return false;
  if (pos + len > buf.size()) return false;
  s.assign(buf.substr(pos, len));
  pos += len;
  return true;
}

std::string encode_u64_column(std::span<const std::uint64_t> values,
                              Encoding encoding) {
  std::string payload;
  payload.reserve(values.size() * 2);
  switch (encoding) {
    case Encoding::DeltaVarint: {
      std::uint64_t prev = 0;
      for (const std::uint64_t v : values) {
        // Deltas wrap mod 2^64; zigzag keeps small negative steps short.
        put_varint(payload,
                   zigzag_encode(static_cast<std::int64_t>(v - prev)));
        prev = v;
      }
      break;
    }
    case Encoding::Varint:
      for (const std::uint64_t v : values) put_varint(payload, v);
      break;
    case Encoding::Fixed:
      for (const std::uint64_t v : values) put_fixed64(payload, v);
      break;
    case Encoding::StringBlock:
      throw StoreError("u64 column cannot use string-block encoding");
  }
  return payload;
}

std::vector<std::uint64_t> decode_u64_column(std::string_view payload,
                                             Encoding encoding,
                                             std::uint64_t rows) {
  std::vector<std::uint64_t> values;
  values.reserve(rows);
  std::size_t pos = 0;
  std::uint64_t prev = 0;
  for (std::uint64_t i = 0; i < rows; ++i) {
    std::uint64_t v = 0;
    switch (encoding) {
      case Encoding::DeltaVarint: {
        std::uint64_t zz = 0;
        if (!get_varint(payload, pos, zz))
          throw StoreError("truncated delta-varint block");
        prev += static_cast<std::uint64_t>(zigzag_decode(zz));
        v = prev;
        break;
      }
      case Encoding::Varint:
        if (!get_varint(payload, pos, v))
          throw StoreError("truncated varint block");
        break;
      case Encoding::Fixed:
        if (!get_fixed64(payload, pos, v))
          throw StoreError("truncated fixed64 block");
        break;
      case Encoding::StringBlock:
        throw StoreError("u64 column cannot use string-block encoding");
    }
    values.push_back(v);
  }
  if (pos != payload.size())
    throw StoreError("trailing bytes after u64 block");
  return values;
}

std::string encode_f64_column(std::span<const double> values) {
  std::string payload;
  payload.reserve(values.size() * 8);
  for (const double v : values)
    put_fixed64(payload, std::bit_cast<std::uint64_t>(v));
  return payload;
}

std::vector<double> decode_f64_column(std::string_view payload,
                                      std::uint64_t rows) {
  if (payload.size() != rows * 8)
    throw StoreError("f64 block size does not match row count");
  std::vector<double> values;
  values.reserve(rows);
  std::size_t pos = 0;
  for (std::uint64_t i = 0; i < rows; ++i) {
    std::uint64_t bits = 0;
    get_fixed64(payload, pos, bits);
    values.push_back(std::bit_cast<double>(bits));
  }
  return values;
}

std::string encode_u8_column(std::span<const std::uint8_t> values) {
  if (values.empty()) return {};
  return std::string(reinterpret_cast<const char*>(values.data()),
                     values.size());
}

std::vector<std::uint8_t> decode_u8_column(std::string_view payload,
                                           std::uint64_t rows) {
  if (payload.size() != rows)
    throw StoreError("u8 block size does not match row count");
  return std::vector<std::uint8_t>(payload.begin(), payload.end());
}

std::string encode_string_column(std::span<const std::string> values) {
  std::string payload;
  for (const std::string& s : values) put_string(payload, s);
  return payload;
}

std::vector<std::string> decode_string_column(std::string_view payload,
                                              std::uint64_t rows) {
  std::vector<std::string> values;
  values.reserve(rows);
  std::size_t pos = 0;
  for (std::uint64_t i = 0; i < rows; ++i) {
    std::string s;
    if (!get_string(payload, pos, s))
      throw StoreError("truncated string block");
    values.push_back(std::move(s));
  }
  if (pos != payload.size())
    throw StoreError("trailing bytes after string block");
  return values;
}

}  // namespace ddos::store
