// DRS ("ddosrepro store") — compact, versioned, binary columnar container
// for the pipeline's intermediate datasets. File layout:
//
//   [header, 16 B]   magic "DRS1" (u32 LE), format version (u32 LE),
//                    reserved (u64)
//   [block 0]...[block k-1]   concatenated column payloads, one block per
//                    column, encoded per the column's Encoding
//   [footer]         metadata key/value pairs + the column index
//                    (dataset, column, type, encoding, rows, offset,
//                    size, CRC32C)
//   [trailer, 16 B]  footer size (u64 LE), footer CRC32C (u32 LE),
//                    magic again (u32 LE)
//
// A reader seeks to the trailer, validates magic + footer checksum, and
// has O(1) access to any column's block from the footer index. Every
// block carries its own CRC32C, validated on read. Encodings:
//
//   DeltaVarint  u64 values as zigzag(value - previous) LEB128 varints
//                (timestamps, window indices, sorted keys/ids);
//   Varint       plain LEB128 varints (small unordered counts/ids);
//   Fixed        raw little-endian fixed width (doubles via bit pattern,
//                u8 bytes);
//   StringBlock  per-row varint length + bytes.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace ddos::store {

/// Any malformed-file, checksum, or schema failure raises this; readers
/// fail loudly rather than return partial datasets.
class StoreError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

inline constexpr std::uint32_t kMagic = 0x31535244u;  // "DRS1" little-endian
// Version history:
//   1  initial layout; measurement keys were (nsset << 32 | time).
//   2  measurement keys flipped to time-major (biased time << 32 | nsset)
//      so sorted-key order is day order and streamed epoch retirement can
//      append sorted chunks. v1 stores would silently mis-join if read
//      with the new layout, hence the bump.
//   3  every block payload starts at an 8-byte-aligned file offset (the
//      writer zero-pads between blocks) so a mapped reader can expose
//      Fixed f64 columns as aligned spans directly over the mapping.
//      Offsets moved, so v2 footers no longer describe v3 bytes.
inline constexpr std::uint32_t kFormatVersion = 3;
inline constexpr std::size_t kHeaderSize = 16;
inline constexpr std::size_t kTrailerSize = 16;

enum class ColumnType : std::uint8_t { U64 = 0, F64 = 1, U8 = 2, Str = 3 };
enum class Encoding : std::uint8_t {
  DeltaVarint = 0,
  Varint = 1,
  Fixed = 2,
  StringBlock = 3,
};

const char* to_string(ColumnType t);
const char* to_string(Encoding e);

/// One column block as recorded in the footer index.
struct ColumnDesc {
  std::string dataset;
  std::string column;
  ColumnType type = ColumnType::U64;
  Encoding encoding = Encoding::Varint;
  std::uint64_t rows = 0;
  std::uint64_t offset = 0;  // absolute file offset of the payload
  std::uint64_t size = 0;    // payload bytes
  std::uint32_t crc = 0;     // CRC32C of the payload bytes
};

// ---- byte-buffer primitives (LEB128 varints, zigzag, fixed-width LE).

void put_varint(std::string& out, std::uint64_t v);
/// False when the buffer ends mid-varint or the varint exceeds 64 bits.
bool get_varint(std::string_view buf, std::size_t& pos, std::uint64_t& v);

constexpr std::uint64_t zigzag_encode(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}
constexpr std::int64_t zigzag_decode(std::uint64_t v) {
  return static_cast<std::int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

void put_fixed32(std::string& out, std::uint32_t v);
bool get_fixed32(std::string_view buf, std::size_t& pos, std::uint32_t& v);
void put_fixed64(std::string& out, std::uint64_t v);
bool get_fixed64(std::string_view buf, std::size_t& pos, std::uint64_t& v);
void put_string(std::string& out, std::string_view s);
bool get_string(std::string_view buf, std::size_t& pos, std::string& s);

// ---- column codecs. Encoders produce a payload; decoders throw
//      StoreError on malformed payloads or row-count mismatches.

std::string encode_u64_column(std::span<const std::uint64_t> values,
                              Encoding encoding);
std::vector<std::uint64_t> decode_u64_column(std::string_view payload,
                                             Encoding encoding,
                                             std::uint64_t rows);

std::string encode_f64_column(std::span<const double> values);
std::vector<double> decode_f64_column(std::string_view payload,
                                      std::uint64_t rows);

std::string encode_u8_column(std::span<const std::uint8_t> values);
std::vector<std::uint8_t> decode_u8_column(std::string_view payload,
                                           std::uint64_t rows);

std::string encode_string_column(std::span<const std::string> values);
std::vector<std::string> decode_string_column(std::string_view payload,
                                              std::uint64_t rows);

}  // namespace ddos::store
