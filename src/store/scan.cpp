#include "store/scan.h"

#include <cstring>
#include <functional>

#include "exec/parallel.h"

namespace ddos::store {

namespace {

[[noreturn]] void bad_block(const char* what) { throw StoreError(what); }

// Fully unrolled decode of one LEB128 varint with >= 10 readable bytes.
// Returns the advanced pointer, or nullptr on a non-canonical 10-byte
// varint (same rejection rule as format.h's get_varint). Each step is a
// load + mask + shift + or + compare — no loop counter, no shift
// variable, so the compiler keeps everything in registers and the
// one-byte common case (small counts/ids, tight deltas) is a single
// well-predicted branch.
inline const std::uint8_t* decode_one(const std::uint8_t* p,
                                      std::uint64_t& v) {
  std::uint64_t b = p[0];
  std::uint64_t r = b & 0x7Fu;
  if (b < 0x80u) { v = r; return p + 1; }
  b = p[1]; r |= (b & 0x7Fu) << 7;  if (b < 0x80u) { v = r; return p + 2; }
  b = p[2]; r |= (b & 0x7Fu) << 14; if (b < 0x80u) { v = r; return p + 3; }
  b = p[3]; r |= (b & 0x7Fu) << 21; if (b < 0x80u) { v = r; return p + 4; }
  b = p[4]; r |= (b & 0x7Fu) << 28; if (b < 0x80u) { v = r; return p + 5; }
  b = p[5]; r |= (b & 0x7Fu) << 35; if (b < 0x80u) { v = r; return p + 6; }
  b = p[6]; r |= (b & 0x7Fu) << 42; if (b < 0x80u) { v = r; return p + 7; }
  b = p[7]; r |= (b & 0x7Fu) << 49; if (b < 0x80u) { v = r; return p + 8; }
  b = p[8]; r |= (b & 0x7Fu) << 56; if (b < 0x80u) { v = r; return p + 9; }
  b = p[9];
  if (b > 1) return nullptr;  // continuation past 64 bits / non-canonical
  v = r | (b << 63);
  return p + 10;
}

// Shared skeleton of the two varint decoders: the unrolled loop runs
// while a full 10-byte varint cannot read past the payload; the tail
// (fewer than 10 bytes left) goes through the bounds-checked get_varint.
template <typename Emit>
void decode_varints(std::string_view payload, std::uint64_t rows,
                    Emit&& emit) {
  const auto* base = reinterpret_cast<const std::uint8_t*>(payload.data());
  const std::uint8_t* p = base;
  const std::uint8_t* const end = base + payload.size();
  std::uint64_t i = 0;
  std::uint64_t v = 0;
  while (i < rows && end - p >= 10) {
    const std::uint8_t* next = decode_one(p, v);
    if (next == nullptr) bad_block("malformed varint in block");
    emit(i, v);
    p = next;
    ++i;
  }
  // Tail (< 10 readable bytes) through the bounds-checked slow path.
  std::size_t pos = static_cast<std::size_t>(p - base);
  for (; i < rows; ++i) {
    if (!get_varint(payload, pos, v)) bad_block("truncated varint block");
    emit(i, v);
  }
  if (pos != payload.size()) bad_block("trailing bytes after varint block");
}

}  // namespace

std::vector<std::uint64_t>& ColumnArena::u64_slot(std::string_view dataset,
                                                  std::string_view column,
                                                  std::string_view aux) {
  std::string key;
  key.reserve(dataset.size() + column.size() + aux.size() + 2);
  key.append(dataset).push_back('.');
  key.append(column);
  if (!aux.empty()) {
    key.push_back('.');
    key.append(aux);
  }
  auto& slot = u64_[key];
  if (!slot) slot = std::make_unique<std::vector<std::uint64_t>>();
  return *slot;
}

std::vector<double>& ColumnArena::f64_slot(std::string_view dataset,
                                           std::string_view column) {
  std::string key;
  key.reserve(dataset.size() + column.size() + 1);
  key.append(dataset).push_back('.');
  key.append(column);
  auto& slot = f64_[key];
  if (!slot) slot = std::make_unique<std::vector<double>>();
  return *slot;
}

void decode_varint_block(std::string_view payload, std::uint64_t rows,
                         std::vector<std::uint64_t>& out) {
  out.resize(rows);
  std::uint64_t* dst = out.data();
  decode_varints(payload, rows,
                 [dst](std::uint64_t i, std::uint64_t v) { dst[i] = v; });
}

void decode_delta_varint_block(std::string_view payload, std::uint64_t rows,
                               std::vector<std::uint64_t>& out) {
  out.resize(rows);
  std::uint64_t* dst = out.data();
  std::uint64_t prev = 0;
  decode_varints(payload, rows, [dst, &prev](std::uint64_t i, std::uint64_t zz) {
    // Branch-light prefix sum: zigzag_decode is shift/xor/negate only,
    // and the running value stays in a register across rows.
    prev += static_cast<std::uint64_t>(zigzag_decode(zz));
    dst[i] = prev;
  });
}

void decode_string_offsets(std::string_view payload, std::uint64_t rows,
                           std::vector<std::uint64_t>& starts,
                           std::vector<std::uint64_t>& lens) {
  starts.resize(rows);
  lens.resize(rows);
  std::size_t pos = 0;
  for (std::uint64_t i = 0; i < rows; ++i) {
    std::uint64_t len = 0;
    if (!get_varint(payload, pos, len)) bad_block("truncated string block");
    if (pos + len > payload.size()) bad_block("truncated string block");
    starts[i] = pos;
    lens[i] = len;
    pos += len;
  }
  if (pos != payload.size()) bad_block("trailing bytes after string block");
}

namespace {

bool aligned8(const char* p) {
  return (reinterpret_cast<std::uintptr_t>(p) & 7u) == 0;
}

}  // namespace

std::span<const std::uint64_t> scan_u64(const Reader& reader,
                                        const ColumnDesc& desc,
                                        ColumnArena& arena) {
  if (desc.type != ColumnType::U64)
    throw StoreError("scan_u64: column '" + desc.dataset + "." + desc.column +
                     "' is not u64");
  const std::string_view payload = reader.verified_payload(desc);
  switch (desc.encoding) {
    case Encoding::DeltaVarint: {
      auto& buf = arena.u64_slot(desc.dataset, desc.column);
      decode_delta_varint_block(payload, desc.rows, buf);
      return {buf.data(), buf.size()};
    }
    case Encoding::Varint: {
      auto& buf = arena.u64_slot(desc.dataset, desc.column);
      decode_varint_block(payload, desc.rows, buf);
      return {buf.data(), buf.size()};
    }
    case Encoding::Fixed: {
      if (payload.size() != desc.rows * 8)
        bad_block("fixed64 block size does not match row count");
      if (aligned8(payload.data()))
        return {reinterpret_cast<const std::uint64_t*>(payload.data()),
                desc.rows};
      auto& buf = arena.u64_slot(desc.dataset, desc.column);
      buf.resize(desc.rows);
      std::memcpy(buf.data(), payload.data(), payload.size());
      return {buf.data(), buf.size()};
    }
    case Encoding::StringBlock:
      throw StoreError("u64 column cannot use string-block encoding");
  }
  bad_block("unknown u64 encoding");
}

std::span<const double> scan_f64(const Reader& reader, const ColumnDesc& desc,
                                 ColumnArena& arena) {
  if (desc.type != ColumnType::F64)
    throw StoreError("scan_f64: column '" + desc.dataset + "." + desc.column +
                     "' is not f64");
  const std::string_view payload = reader.verified_payload(desc);
  if (payload.size() != desc.rows * 8)
    bad_block("f64 block size does not match row count");
  if (aligned8(payload.data()))
    return {reinterpret_cast<const double*>(payload.data()), desc.rows};
  std::vector<double>& buf = arena.f64_slot(desc.dataset, desc.column);
  buf.resize(desc.rows);
  std::memcpy(buf.data(), payload.data(), payload.size());
  return {buf.data(), buf.size()};
}

std::span<const std::uint8_t> scan_u8(const Reader& reader,
                                      const ColumnDesc& desc) {
  if (desc.type != ColumnType::U8)
    throw StoreError("scan_u8: column '" + desc.dataset + "." + desc.column +
                     "' is not u8");
  const std::string_view payload = reader.verified_payload(desc);
  if (payload.size() != desc.rows)
    bad_block("u8 block size does not match row count");
  return {reinterpret_cast<const std::uint8_t*>(payload.data()), desc.rows};
}

core::StringColumnView scan_strings(const Reader& reader,
                                    const ColumnDesc& desc,
                                    ColumnArena& arena) {
  if (desc.type != ColumnType::Str)
    throw StoreError("scan_strings: column '" + desc.dataset + "." +
                     desc.column + "' is not str");
  const std::string_view payload = reader.verified_payload(desc);
  std::vector<std::uint64_t>& starts =
      arena.u64_slot(desc.dataset, desc.column, "starts");
  std::vector<std::uint64_t>& lens =
      arena.u64_slot(desc.dataset, desc.column, "lens");
  decode_string_offsets(payload, desc.rows, starts, lens);
  core::StringColumnView view;
  view.bytes = payload;
  view.starts = {starts.data(), starts.size()};
  view.lens = {lens.data(), lens.size()};
  return view;
}

core::EventFrame read_event_frame(const Reader& reader, ColumnArena& arena) {
  core::EventFrame f;
  f.rows = reader.dataset_rows("events");
  const auto u64c = [&](std::string_view col) {
    return scan_u64(reader, reader.column("events", col), arena);
  };
  const auto f64c = [&](std::string_view col) {
    return scan_f64(reader, reader.column("events", col), arena);
  };
  const auto u8c = [&](std::string_view col) {
    return scan_u8(reader, reader.column("events", col));
  };
  f.victim = u64c("victim");
  f.start_window = u64c("start_window");
  f.end_window = u64c("end_window");
  f.max_ppm = f64c("max_ppm");
  f.total_packets = u64c("total_packets");
  f.max_slash16 = u64c("max_slash16");
  f.protocol = u8c("protocol");
  f.first_port = u64c("first_port");
  f.max_unique_ports = u64c("max_unique_ports");
  f.nsset = u64c("nsset");
  f.domains_hosted = u64c("domains_hosted");
  f.domains_measured = u64c("domains_measured");
  f.baseline_rtt_ms = f64c("baseline_rtt_ms");
  f.peak_impact = f64c("peak_impact");
  f.mean_impact = f64c("mean_impact");
  f.ok = u64c("ok");
  f.timeouts = u64c("timeouts");
  f.servfails = u64c("servfails");
  f.failure_rate = f64c("failure_rate");
  f.anycast_class = u8c("anycast_class");
  f.distinct_asns = u64c("distinct_asns");
  f.distinct_slash24 = u64c("distinct_slash24");
  f.nameserver_count = u64c("nameserver_count");
  f.asn = u64c("asn");
  f.org = scan_strings(reader, reader.column("events", "org"), arena);
  return f;
}

std::uint64_t scan_all(const Reader& reader, ColumnArena& arena) {
  // Acquire arena slots serially (the arena is not thread-safe), then
  // fan the per-block decodes out across the pool.
  std::vector<std::function<void()>> jobs;
  std::uint64_t bytes = 0;
  for (const ColumnDesc& desc : reader.columns()) {
    bytes += desc.size;
    switch (desc.type) {
      case ColumnType::U64: {
        if (desc.encoding == Encoding::Fixed) {
          // Zero-copy when aligned (every v3 block is); the pre-acquired
          // buffer keeps the misaligned fallback off the shared map.
          auto& buf = arena.u64_slot(desc.dataset, desc.column);
          jobs.push_back([&reader, &desc, &buf] {
            const std::string_view payload = reader.verified_payload(desc);
            if (payload.size() != desc.rows * 8)
              bad_block("fixed64 block size does not match row count");
            if (!aligned8(payload.data())) {
              buf.resize(desc.rows);
              std::memcpy(buf.data(), payload.data(), payload.size());
            }
          });
          break;
        }
        auto& buf = arena.u64_slot(desc.dataset, desc.column);
        jobs.push_back([&reader, &desc, &buf] {
          const std::string_view payload = reader.verified_payload(desc);
          if (desc.encoding == Encoding::DeltaVarint)
            decode_delta_varint_block(payload, desc.rows, buf);
          else
            decode_varint_block(payload, desc.rows, buf);
        });
        break;
      }
      case ColumnType::F64: {
        auto& buf = arena.f64_slot(desc.dataset, desc.column);
        jobs.push_back([&reader, &desc, &buf] {
          const std::string_view payload = reader.verified_payload(desc);
          if (payload.size() != desc.rows * 8)
            bad_block("f64 block size does not match row count");
          if (!aligned8(payload.data())) {
            buf.resize(desc.rows);
            std::memcpy(buf.data(), payload.data(), payload.size());
          }
        });
        break;
      }
      case ColumnType::U8:
        jobs.push_back([&reader, &desc] { scan_u8(reader, desc); });
        break;
      case ColumnType::Str: {
        auto& starts = arena.u64_slot(desc.dataset, desc.column, "starts");
        auto& lens = arena.u64_slot(desc.dataset, desc.column, "lens");
        jobs.push_back([&reader, &desc, &starts, &lens] {
          decode_string_offsets(reader.verified_payload(desc), desc.rows,
                                starts, lens);
        });
        break;
      }
    }
  }
  Reader::parallel_decode(jobs);
  return bytes;
}

}  // namespace ddos::store
