#include "store/dataset.h"

#include <cstdint>
#include <functional>
#include <string>

namespace ddos::store {

namespace {

// Column builders: gather one struct field across all rows into a typed
// column vector, written/read as one block.

template <typename T, typename Fn>
std::vector<std::uint64_t> u64_column(const std::vector<T>& rows, Fn&& get) {
  std::vector<std::uint64_t> col;
  col.reserve(rows.size());
  for (const T& r : rows) col.push_back(static_cast<std::uint64_t>(get(r)));
  return col;
}

template <typename T, typename Fn>
std::vector<double> f64_column(const std::vector<T>& rows, Fn&& get) {
  std::vector<double> col;
  col.reserve(rows.size());
  for (const T& r : rows) col.push_back(get(r));
  return col;
}

template <typename T, typename Fn>
std::vector<std::uint8_t> u8_column(const std::vector<T>& rows, Fn&& get) {
  std::vector<std::uint8_t> col;
  col.reserve(rows.size());
  for (const T& r : rows) col.push_back(static_cast<std::uint8_t>(get(r)));
  return col;
}

void expect_rows(const Reader& reader, const char* dataset,
                 std::size_t expected, std::size_t actual) {
  if (expected != actual)
    throw StoreError(reader.path() + ": dataset '" + dataset +
                     "' column row-count mismatch");
}

// Shared layout of the "daily" and "window" aggregate datasets.
void write_aggregates(
    Writer& writer, const char* dataset,
    const std::vector<std::pair<std::uint64_t, openintel::Aggregate>>& rows) {
  using Row = std::pair<std::uint64_t, openintel::Aggregate>;
  writer.add_u64(dataset, "key",
                 u64_column(rows, [](const Row& r) { return r.first; }),
                 Encoding::DeltaVarint);
  writer.add_u64(dataset, "measured",
                 u64_column(rows, [](const Row& r) { return r.second.measured; }),
                 Encoding::Varint);
  writer.add_u64(dataset, "ok",
                 u64_column(rows, [](const Row& r) { return r.second.ok; }),
                 Encoding::Varint);
  writer.add_u64(dataset, "timeout",
                 u64_column(rows, [](const Row& r) { return r.second.timeout; }),
                 Encoding::Varint);
  writer.add_u64(dataset, "servfail",
                 u64_column(rows, [](const Row& r) { return r.second.servfail; }),
                 Encoding::Varint);
  writer.add_u64(dataset, "rtt_n",
                 u64_column(rows,
                            [](const Row& r) { return r.second.rtt.raw().n; }),
                 Encoding::Varint);
  writer.add_f64(dataset, "rtt_sum",
                 f64_column(rows,
                            [](const Row& r) { return r.second.rtt.raw().sum; }));
  writer.add_f64(dataset, "rtt_m",
                 f64_column(rows,
                            [](const Row& r) { return r.second.rtt.raw().m; }));
  writer.add_f64(dataset, "rtt_m2",
                 f64_column(rows,
                            [](const Row& r) { return r.second.rtt.raw().m2; }));
  writer.add_f64(dataset, "rtt_min",
                 f64_column(rows,
                            [](const Row& r) { return r.second.rtt.raw().min; }));
  writer.add_f64(dataset, "rtt_max",
                 f64_column(rows,
                            [](const Row& r) { return r.second.rtt.raw().max; }));
}

std::vector<std::pair<std::uint64_t, openintel::Aggregate>> read_aggregates(
    const Reader& reader, const char* dataset) {
  const std::uint64_t rows = reader.dataset_rows(dataset);

  std::vector<std::uint64_t> key, measured, ok, timeout, servfail, rtt_n;
  std::vector<double> rtt_sum, rtt_m, rtt_m2, rtt_min, rtt_max;
  Reader::parallel_decode({
      [&] { key = reader.read_u64(dataset, "key"); },
      [&] { measured = reader.read_u64(dataset, "measured"); },
      [&] { ok = reader.read_u64(dataset, "ok"); },
      [&] { timeout = reader.read_u64(dataset, "timeout"); },
      [&] { servfail = reader.read_u64(dataset, "servfail"); },
      [&] { rtt_n = reader.read_u64(dataset, "rtt_n"); },
      [&] { rtt_sum = reader.read_f64(dataset, "rtt_sum"); },
      [&] { rtt_m = reader.read_f64(dataset, "rtt_m"); },
      [&] { rtt_m2 = reader.read_f64(dataset, "rtt_m2"); },
      [&] { rtt_min = reader.read_f64(dataset, "rtt_min"); },
      [&] { rtt_max = reader.read_f64(dataset, "rtt_max"); },
  });
  expect_rows(reader, dataset, rows, key.size());

  std::vector<std::pair<std::uint64_t, openintel::Aggregate>> out;
  out.reserve(rows);
  for (std::uint64_t i = 0; i < rows; ++i) {
    openintel::Aggregate agg;
    agg.measured = static_cast<std::uint32_t>(measured[i]);
    agg.ok = static_cast<std::uint32_t>(ok[i]);
    agg.timeout = static_cast<std::uint32_t>(timeout[i]);
    agg.servfail = static_cast<std::uint32_t>(servfail[i]);
    util::RunningStats::Raw raw;
    raw.n = rtt_n[i];
    raw.sum = rtt_sum[i];
    raw.m = rtt_m[i];
    raw.m2 = rtt_m2[i];
    raw.min = rtt_min[i];
    raw.max = rtt_max[i];
    agg.rtt = util::RunningStats::from_raw(raw);
    out.emplace_back(key[i], agg);
  }
  return out;
}

}  // namespace

void write_feed_records(Writer& writer,
                        const std::vector<telescope::RSDoSRecord>& records) {
  using R = telescope::RSDoSRecord;
  writer.add_u64("feed", "window",
                 u64_column(records, [](const R& r) { return r.window; }),
                 Encoding::DeltaVarint);
  writer.add_u64("feed", "victim",
                 u64_column(records, [](const R& r) { return r.victim.value(); }),
                 Encoding::Varint);
  writer.add_u64("feed", "slash16",
                 u64_column(records,
                            [](const R& r) { return r.distinct_slash16; }),
                 Encoding::Varint);
  writer.add_u8("feed", "protocol",
                u8_column(records, [](const R& r) { return r.protocol; }));
  writer.add_u64("feed", "first_port",
                 u64_column(records, [](const R& r) { return r.first_port; }),
                 Encoding::Varint);
  writer.add_u64("feed", "unique_ports",
                 u64_column(records, [](const R& r) { return r.unique_ports; }),
                 Encoding::Varint);
  writer.add_f64("feed", "max_ppm",
                 f64_column(records, [](const R& r) { return r.max_ppm; }));
  writer.add_u64("feed", "packets",
                 u64_column(records, [](const R& r) { return r.packets; }),
                 Encoding::Varint);
}

std::vector<telescope::RSDoSRecord> read_feed_records(const Reader& reader) {
  const std::uint64_t rows = reader.dataset_rows("feed");

  std::vector<std::uint64_t> window, victim, slash16, first_port,
      unique_ports, packets;
  std::vector<std::uint8_t> protocol;
  std::vector<double> max_ppm;
  Reader::parallel_decode({
      [&] { window = reader.read_u64("feed", "window"); },
      [&] { victim = reader.read_u64("feed", "victim"); },
      [&] { slash16 = reader.read_u64("feed", "slash16"); },
      [&] { protocol = reader.read_u8("feed", "protocol"); },
      [&] { first_port = reader.read_u64("feed", "first_port"); },
      [&] { unique_ports = reader.read_u64("feed", "unique_ports"); },
      [&] { max_ppm = reader.read_f64("feed", "max_ppm"); },
      [&] { packets = reader.read_u64("feed", "packets"); },
  });
  expect_rows(reader, "feed", rows, window.size());

  std::vector<telescope::RSDoSRecord> records;
  records.reserve(rows);
  for (std::uint64_t i = 0; i < rows; ++i) {
    telescope::RSDoSRecord r;
    r.window = static_cast<netsim::WindowIndex>(window[i]);
    r.victim = netsim::IPv4Addr(static_cast<std::uint32_t>(victim[i]));
    r.distinct_slash16 = static_cast<std::uint32_t>(slash16[i]);
    r.protocol = static_cast<attack::Protocol>(protocol[i]);
    r.first_port = static_cast<std::uint16_t>(first_port[i]);
    r.unique_ports = static_cast<std::uint16_t>(unique_ports[i]);
    r.max_ppm = max_ppm[i];
    r.packets = packets[i];
    records.push_back(r);
  }
  return records;
}

void write_measurements(Writer& writer,
                        const openintel::MeasurementStore& store) {
  write_aggregates(writer, "daily", store.sorted_daily());
  write_aggregates(writer, "window", store.sorted_window());

  using Seen = std::pair<netsim::DayIndex, netsim::IPv4Addr>;
  const std::vector<Seen> seen = store.sorted_ns_seen();
  writer.add_u64("ns_seen", "day",
                 u64_column(seen, [](const Seen& s) { return s.first; }),
                 Encoding::DeltaVarint);
  writer.add_u64("ns_seen", "ip",
                 u64_column(seen, [](const Seen& s) { return s.second.value(); }),
                 Encoding::DeltaVarint);
}

void read_measurements(const Reader& reader,
                       openintel::MeasurementStore& store) {
  // Size the restore targets from the column row counts up front: loads
  // then probe into final-size tables instead of rehashing O(log n) times.
  const auto daily = read_aggregates(reader, "daily");
  store.reserve_daily(daily.size());
  for (const auto& [key, agg] : daily) store.restore_daily(key, agg);

  const auto window = read_aggregates(reader, "window");
  store.reserve_window(window.size());
  for (const auto& [key, agg] : window) store.restore_window(key, agg);

  const std::uint64_t rows = reader.dataset_rows("ns_seen");
  std::vector<std::uint64_t> day, ip;
  Reader::parallel_decode({
      [&] { day = reader.read_u64("ns_seen", "day"); },
      [&] { ip = reader.read_u64("ns_seen", "ip"); },
  });
  expect_rows(reader, "ns_seen", rows, day.size());
  // The snapshot is sorted by (day, ip), so each day's sightings form one
  // run; reserve the per-day set from the run length before inserting.
  for (std::uint64_t i = 0; i < rows;) {
    std::uint64_t end = i + 1;
    while (end < rows && day[end] == day[i]) ++end;
    const auto d = static_cast<netsim::DayIndex>(day[i]);
    store.reserve_ns_seen(d, end - i);
    for (; i < end; ++i) {
      store.restore_ns_seen(d,
                            netsim::IPv4Addr(static_cast<std::uint32_t>(ip[i])));
    }
  }
}

void write_joined_events(Writer& writer,
                         const std::vector<core::NssetAttackEvent>& events) {
  using E = core::NssetAttackEvent;
  // Telescope-event fields.
  writer.add_u64("events", "victim",
                 u64_column(events,
                            [](const E& e) { return e.rsdos.victim.value(); }),
                 Encoding::Varint);
  writer.add_u64("events", "start_window",
                 u64_column(events,
                            [](const E& e) { return e.rsdos.start_window; }),
                 Encoding::DeltaVarint);
  writer.add_u64("events", "end_window",
                 u64_column(events,
                            [](const E& e) { return e.rsdos.end_window; }),
                 Encoding::DeltaVarint);
  writer.add_f64("events", "max_ppm",
                 f64_column(events,
                            [](const E& e) { return e.rsdos.max_ppm; }));
  writer.add_u64("events", "total_packets",
                 u64_column(events,
                            [](const E& e) { return e.rsdos.total_packets; }),
                 Encoding::Varint);
  writer.add_u64("events", "max_slash16",
                 u64_column(events,
                            [](const E& e) { return e.rsdos.max_slash16; }),
                 Encoding::Varint);
  writer.add_u8("events", "protocol",
                u8_column(events, [](const E& e) { return e.rsdos.protocol; }));
  writer.add_u64("events", "first_port",
                 u64_column(events,
                            [](const E& e) { return e.rsdos.first_port; }),
                 Encoding::Varint);
  writer.add_u64("events", "max_unique_ports",
                 u64_column(events,
                            [](const E& e) { return e.rsdos.max_unique_ports; }),
                 Encoding::Varint);
  // Join fields.
  writer.add_u64("events", "nsset",
                 u64_column(events, [](const E& e) { return e.nsset; }),
                 Encoding::Varint);
  writer.add_u64("events", "domains_hosted",
                 u64_column(events, [](const E& e) { return e.domains_hosted; }),
                 Encoding::Varint);
  writer.add_u64("events", "domains_measured",
                 u64_column(events,
                            [](const E& e) { return e.domains_measured; }),
                 Encoding::Varint);
  writer.add_f64("events", "baseline_rtt_ms",
                 f64_column(events,
                            [](const E& e) { return e.baseline_rtt_ms; }));
  writer.add_f64("events", "peak_impact",
                 f64_column(events, [](const E& e) { return e.peak_impact; }));
  writer.add_f64("events", "mean_impact",
                 f64_column(events, [](const E& e) { return e.mean_impact; }));
  writer.add_u64("events", "ok",
                 u64_column(events, [](const E& e) { return e.ok; }),
                 Encoding::Varint);
  writer.add_u64("events", "timeouts",
                 u64_column(events, [](const E& e) { return e.timeouts; }),
                 Encoding::Varint);
  writer.add_u64("events", "servfails",
                 u64_column(events, [](const E& e) { return e.servfails; }),
                 Encoding::Varint);
  writer.add_f64("events", "failure_rate",
                 f64_column(events, [](const E& e) { return e.failure_rate; }));
  // Resilience profile.
  writer.add_u8("events", "anycast_class",
                u8_column(events, [](const E& e) {
                  return e.resilience.anycast_class;
                }));
  writer.add_u64("events", "distinct_asns",
                 u64_column(events,
                            [](const E& e) { return e.resilience.distinct_asns; }),
                 Encoding::Varint);
  writer.add_u64("events", "distinct_slash24",
                 u64_column(events,
                            [](const E& e) {
                              return e.resilience.distinct_slash24;
                            }),
                 Encoding::Varint);
  writer.add_u64("events", "nameserver_count",
                 u64_column(events,
                            [](const E& e) {
                              return e.resilience.nameserver_count;
                            }),
                 Encoding::Varint);
  writer.add_u64("events", "asn",
                 u64_column(events,
                            [](const E& e) { return e.resilience.asn; }),
                 Encoding::Varint);
  {
    std::vector<std::string> orgs;
    orgs.reserve(events.size());
    for (const E& e : events) orgs.push_back(e.resilience.org);
    writer.add_strings("events", "org", orgs);
  }
}

std::vector<core::NssetAttackEvent> read_joined_events(const Reader& reader) {
  const std::uint64_t rows = reader.dataset_rows("events");

  std::vector<std::uint64_t> victim, start_window, end_window, total_packets,
      max_slash16, first_port, max_unique_ports, nsset, domains_hosted,
      domains_measured, ok, timeouts, servfails, distinct_asns,
      distinct_slash24, nameserver_count, asn;
  std::vector<std::uint8_t> protocol, anycast_class;
  std::vector<double> max_ppm, baseline_rtt_ms, peak_impact, mean_impact,
      failure_rate;
  std::vector<std::string> org;
  Reader::parallel_decode({
      [&] { victim = reader.read_u64("events", "victim"); },
      [&] { start_window = reader.read_u64("events", "start_window"); },
      [&] { end_window = reader.read_u64("events", "end_window"); },
      [&] { max_ppm = reader.read_f64("events", "max_ppm"); },
      [&] { total_packets = reader.read_u64("events", "total_packets"); },
      [&] { max_slash16 = reader.read_u64("events", "max_slash16"); },
      [&] { protocol = reader.read_u8("events", "protocol"); },
      [&] { first_port = reader.read_u64("events", "first_port"); },
      [&] {
        max_unique_ports = reader.read_u64("events", "max_unique_ports");
      },
      [&] { nsset = reader.read_u64("events", "nsset"); },
      [&] { domains_hosted = reader.read_u64("events", "domains_hosted"); },
      [&] {
        domains_measured = reader.read_u64("events", "domains_measured");
      },
      [&] { baseline_rtt_ms = reader.read_f64("events", "baseline_rtt_ms"); },
      [&] { peak_impact = reader.read_f64("events", "peak_impact"); },
      [&] { mean_impact = reader.read_f64("events", "mean_impact"); },
      [&] { ok = reader.read_u64("events", "ok"); },
      [&] { timeouts = reader.read_u64("events", "timeouts"); },
      [&] { servfails = reader.read_u64("events", "servfails"); },
      [&] { failure_rate = reader.read_f64("events", "failure_rate"); },
      [&] { anycast_class = reader.read_u8("events", "anycast_class"); },
      [&] { distinct_asns = reader.read_u64("events", "distinct_asns"); },
      [&] {
        distinct_slash24 = reader.read_u64("events", "distinct_slash24");
      },
      [&] {
        nameserver_count = reader.read_u64("events", "nameserver_count");
      },
      [&] { asn = reader.read_u64("events", "asn"); },
      [&] { org = reader.read_strings("events", "org"); },
  });
  expect_rows(reader, "events", rows, victim.size());

  std::vector<core::NssetAttackEvent> events;
  events.reserve(rows);
  for (std::uint64_t i = 0; i < rows; ++i) {
    core::NssetAttackEvent e;
    e.rsdos.victim = netsim::IPv4Addr(static_cast<std::uint32_t>(victim[i]));
    e.rsdos.start_window = static_cast<netsim::WindowIndex>(start_window[i]);
    e.rsdos.end_window = static_cast<netsim::WindowIndex>(end_window[i]);
    e.rsdos.max_ppm = max_ppm[i];
    e.rsdos.total_packets = total_packets[i];
    e.rsdos.max_slash16 = static_cast<std::uint32_t>(max_slash16[i]);
    e.rsdos.protocol = static_cast<attack::Protocol>(protocol[i]);
    e.rsdos.first_port = static_cast<std::uint16_t>(first_port[i]);
    e.rsdos.max_unique_ports =
        static_cast<std::uint16_t>(max_unique_ports[i]);
    e.nsset = static_cast<dns::NssetId>(nsset[i]);
    e.domains_hosted = domains_hosted[i];
    e.domains_measured = static_cast<std::uint32_t>(domains_measured[i]);
    e.baseline_rtt_ms = baseline_rtt_ms[i];
    e.peak_impact = peak_impact[i];
    e.mean_impact = mean_impact[i];
    e.ok = static_cast<std::uint32_t>(ok[i]);
    e.timeouts = static_cast<std::uint32_t>(timeouts[i]);
    e.servfails = static_cast<std::uint32_t>(servfails[i]);
    e.failure_rate = failure_rate[i];
    e.resilience.anycast_class =
        static_cast<anycast::AnycastClass>(anycast_class[i]);
    e.resilience.distinct_asns = static_cast<std::uint32_t>(distinct_asns[i]);
    e.resilience.distinct_slash24 =
        static_cast<std::uint32_t>(distinct_slash24[i]);
    e.resilience.nameserver_count =
        static_cast<std::uint32_t>(nameserver_count[i]);
    e.resilience.asn = static_cast<topology::Asn>(asn[i]);
    e.resilience.org = std::move(org[i]);
    events.push_back(std::move(e));
  }
  return events;
}

}  // namespace ddos::store
