// Pipeline dataset <-> DRS column mapping. Three datasets mirror the
// paper's data layer (DESIGN.md §"Dataset store"):
//
//   "feed"    — the simulated RSDoS feed windows (telescope::RSDoSRecord),
//               one row per curated 5-minute record;
//   "daily" / "window" / "ns_seen"
//             — the OpenINTEL sweep aggregates (openintel::MeasurementStore
//               state): per-(NSSet, day) and per-(NSSet, window) aggregates
//               with their full Welford RTT state, plus the seen-NS sets
//               driving the previous-day join;
//   "events"  — the joined NSSet-attack events (core::NssetAttackEvent),
//               every field, lossless (unlike the events CSV).
//
// Id/timestamp columns are delta+varint encoded (sorted keys compress to
// ~1 byte per row); counts are varints; RTT/impact columns are raw f64
// bit patterns so round trips are bit-exact. Readers fan block decoding
// out across the exec worker pool and throw store::StoreError on any
// checksum or schema defect.
#pragma once

#include <vector>

#include "core/join.h"
#include "openintel/storage.h"
#include "store/reader.h"
#include "store/writer.h"
#include "telescope/rsdos.h"

namespace ddos::store {

void write_feed_records(Writer& writer,
                        const std::vector<telescope::RSDoSRecord>& records);
std::vector<telescope::RSDoSRecord> read_feed_records(const Reader& reader);

void write_measurements(Writer& writer,
                        const openintel::MeasurementStore& store);
/// Restores into `store` (expected fresh); total_measurements is restored
/// from the row counts' generating run via scenario::save_run metadata,
/// not here.
void read_measurements(const Reader& reader,
                       openintel::MeasurementStore& store);

void write_joined_events(Writer& writer,
                         const std::vector<core::NssetAttackEvent>& events);
std::vector<core::NssetAttackEvent> read_joined_events(const Reader& reader);

}  // namespace ddos::store
