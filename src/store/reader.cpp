#include "store/reader.h"

#include <fstream>
#include <sstream>

#include "exec/parallel.h"
#include "store/checksum.h"

namespace ddos::store {

namespace {

[[noreturn]] void fail(const std::string& path, const std::string& what) {
  throw StoreError(path + ": " + what);
}

}  // namespace

Reader::Reader(const std::string& path) : path_(path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) fail(path, "cannot open");
  std::ostringstream buf;
  buf << in.rdbuf();
  data_ = std::move(buf).str();

  if (data_.size() < kHeaderSize + kTrailerSize)
    fail(path, "truncated: smaller than header + trailer");

  std::size_t pos = 0;
  std::uint32_t magic = 0, version = 0;
  std::uint64_t reserved = 0;
  get_fixed32(data_, pos, magic);
  get_fixed32(data_, pos, version);
  get_fixed64(data_, pos, reserved);
  if (magic != kMagic) fail(path, "bad magic: not a DRS store");
  if (version != kFormatVersion)
    fail(path, "unsupported DRS version " + std::to_string(version) +
                   " (expected " + std::to_string(kFormatVersion) + ")");

  std::size_t tpos = data_.size() - kTrailerSize;
  std::uint64_t footer_size = 0;
  std::uint32_t footer_crc = 0, trailer_magic = 0;
  get_fixed64(data_, tpos, footer_size);
  get_fixed32(data_, tpos, footer_crc);
  get_fixed32(data_, tpos, trailer_magic);
  if (trailer_magic != kMagic)
    fail(path, "bad trailer magic: truncated or corrupt file");
  if (footer_size > data_.size() - kHeaderSize - kTrailerSize)
    fail(path, "footer size exceeds file");

  const std::size_t footer_begin =
      data_.size() - kTrailerSize - footer_size;
  const std::string_view footer =
      std::string_view(data_).substr(footer_begin, footer_size);
  if (crc32c(footer) != footer_crc) fail(path, "footer checksum mismatch");

  std::size_t fpos = 0;
  std::uint64_t meta_count = 0;
  if (!get_varint(footer, fpos, meta_count)) fail(path, "malformed footer");
  for (std::uint64_t i = 0; i < meta_count; ++i) {
    std::string key, value;
    if (!get_string(footer, fpos, key) || !get_string(footer, fpos, value))
      fail(path, "malformed footer metadata");
    meta_.emplace_back(std::move(key), std::move(value));
  }

  std::uint64_t column_count = 0;
  if (!get_varint(footer, fpos, column_count)) fail(path, "malformed footer");
  for (std::uint64_t i = 0; i < column_count; ++i) {
    ColumnDesc c;
    if (!get_string(footer, fpos, c.dataset) ||
        !get_string(footer, fpos, c.column) || fpos + 2 > footer.size())
      fail(path, "malformed footer column index");
    c.type = static_cast<ColumnType>(footer[fpos++]);
    c.encoding = static_cast<Encoding>(footer[fpos++]);
    if (!get_varint(footer, fpos, c.rows) ||
        !get_varint(footer, fpos, c.offset) ||
        !get_varint(footer, fpos, c.size))
      fail(path, "malformed footer column index");
    if (!get_fixed32(footer, fpos, c.crc))
      fail(path, "malformed footer column index");
    if (c.offset < kHeaderSize || c.offset + c.size > footer_begin)
      fail(path, "column '" + c.dataset + "." + c.column +
                     "' extends outside the block region");
    columns_.push_back(std::move(c));
  }
  if (fpos != footer.size()) fail(path, "trailing bytes in footer");
}

bool Reader::has_meta(std::string_view key) const {
  for (const auto& [k, v] : meta_)
    if (k == key) return true;
  return false;
}

std::string Reader::meta_value(std::string_view key) const {
  for (const auto& [k, v] : meta_)
    if (k == key) return v;
  fail(path_, "missing metadata key '" + std::string(key) + "'");
}

std::string Reader::meta_or(std::string_view key,
                            std::string_view fallback) const {
  for (const auto& [k, v] : meta_)
    if (k == key) return v;
  return std::string(fallback);
}

bool Reader::has_column(std::string_view dataset,
                        std::string_view column) const {
  for (const auto& c : columns_)
    if (c.dataset == dataset && c.column == column) return true;
  return false;
}

const ColumnDesc& Reader::column(std::string_view dataset,
                                 std::string_view column) const {
  for (const auto& c : columns_)
    if (c.dataset == dataset && c.column == column) return c;
  fail(path_, "missing column '" + std::string(dataset) + "." +
                  std::string(column) + "'");
}

std::uint64_t Reader::dataset_rows(std::string_view dataset) const {
  std::uint64_t rows = 0;
  bool found = false;
  for (const auto& c : columns_) {
    if (c.dataset != dataset) continue;
    if (found && c.rows != rows)
      fail(path_, "dataset '" + std::string(dataset) +
                      "' has columns with differing row counts");
    rows = c.rows;
    found = true;
  }
  if (!found) fail(path_, "missing dataset '" + std::string(dataset) + "'");
  return rows;
}

std::string_view Reader::payload(const ColumnDesc& desc) const {
  return std::string_view(data_).substr(desc.offset, desc.size);
}

void Reader::check_crc(const ColumnDesc& desc) const {
  if (crc32c(payload(desc)) != desc.crc)
    fail(path_, "checksum mismatch in block '" + desc.dataset + "." +
                    desc.column + "' (corrupt store)");
}

std::vector<std::uint64_t> Reader::read_u64(std::string_view dataset,
                                            std::string_view col) const {
  const ColumnDesc& c = column(dataset, col);
  if (c.type != ColumnType::U64)
    fail(path_, "column '" + c.dataset + "." + c.column + "' is not u64");
  check_crc(c);
  return decode_u64_column(payload(c), c.encoding, c.rows);
}

std::vector<double> Reader::read_f64(std::string_view dataset,
                                     std::string_view col) const {
  const ColumnDesc& c = column(dataset, col);
  if (c.type != ColumnType::F64)
    fail(path_, "column '" + c.dataset + "." + c.column + "' is not f64");
  check_crc(c);
  return decode_f64_column(payload(c), c.rows);
}

std::vector<std::uint8_t> Reader::read_u8(std::string_view dataset,
                                          std::string_view col) const {
  const ColumnDesc& c = column(dataset, col);
  if (c.type != ColumnType::U8)
    fail(path_, "column '" + c.dataset + "." + c.column + "' is not u8");
  check_crc(c);
  return decode_u8_column(payload(c), c.rows);
}

std::vector<std::string> Reader::read_strings(std::string_view dataset,
                                              std::string_view col) const {
  const ColumnDesc& c = column(dataset, col);
  if (c.type != ColumnType::Str)
    fail(path_, "column '" + c.dataset + "." + c.column + "' is not str");
  check_crc(c);
  return decode_string_column(payload(c), c.rows);
}

void Reader::parallel_decode(const std::vector<std::function<void()>>& jobs) {
  exec::RegionOptions opts;
  opts.label = "store.read";
  exec::parallel_for(jobs.size(), opts, [&](const exec::ShardRange& range) {
    for (std::size_t i = range.begin; i < range.end; ++i) jobs[i]();
  });
}

void Reader::validate_all() const {
  exec::RegionOptions opts;
  opts.label = "store.validate";
  exec::parallel_for(columns_.size(), opts,
                     [&](const exec::ShardRange& range) {
                       for (std::size_t i = range.begin; i < range.end; ++i)
                         check_crc(columns_[i]);
                     });
}

}  // namespace ddos::store
