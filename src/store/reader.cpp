#include "store/reader.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <fstream>
#include <sstream>

#include "exec/parallel.h"
#include "obs/obs.h"
#include "store/checksum.h"

namespace ddos::store {

namespace {

[[noreturn]] void fail(const std::string& path, const std::string& what) {
  throw StoreError(path + ": " + what);
}

}  // namespace

Reader::Reader(const std::string& path, ReadMode mode) : path_(path) {
  if (mode == ReadMode::Mapped) {
    int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd >= 0) {
      struct stat st {};
      if (::fstat(fd, &st) == 0 && st.st_size > 0) {
        auto size = static_cast<std::size_t>(st.st_size);
        void* m = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
        if (m != MAP_FAILED) {
          // The scan path touches every block front to back; tell the
          // kernel so readahead stays aggressive.
          ::posix_madvise(m, size, POSIX_MADV_WILLNEED);
          map_ = m;
          map_size_ = size;
          data_ = std::string_view(static_cast<const char*>(m), size);
        }
      }
      ::close(fd);
    }
    // Any failure above (no file, empty file, mmap refused — e.g. some
    // network/overlay filesystems) falls through to the buffered path,
    // which reports "cannot open" with the usual message if the file
    // really is absent.
  }

  if (map_ == nullptr) {
    std::ifstream in(path, std::ios::binary);
    if (!in) fail(path, "cannot open");
    std::ostringstream buf;
    buf << in.rdbuf();
    buffer_ = std::move(buf).str();
    data_ = buffer_;
  }

  try {
    parse(data_);
  } catch (...) {
    if (map_ != nullptr) ::munmap(map_, map_size_);
    map_ = nullptr;
    throw;
  }

  crc_checked_ =
      std::make_unique<std::atomic<std::uint8_t>[]>(columns_.size());
  for (std::size_t i = 0; i < columns_.size(); ++i)
    crc_checked_[i].store(0, std::memory_order_relaxed);

  if (map_ != nullptr) {
    if (obs::Observer* o = obs::Observer::installed())
      o->pipeline.store_blocks_mapped.inc(columns_.size());
  }
}

Reader::~Reader() {
  if (map_ != nullptr) ::munmap(map_, map_size_);
}

void Reader::parse(std::string_view data) {
  const std::string& path = path_;
  if (data.size() < kHeaderSize + kTrailerSize)
    fail(path, "truncated: smaller than header + trailer");

  std::size_t pos = 0;
  std::uint32_t magic = 0, version = 0;
  std::uint64_t reserved = 0;
  get_fixed32(data, pos, magic);
  get_fixed32(data, pos, version);
  get_fixed64(data, pos, reserved);
  if (magic != kMagic) fail(path, "bad magic: not a DRS store");
  if (version != kFormatVersion)
    fail(path, "unsupported DRS version " + std::to_string(version) +
                   " (expected " + std::to_string(kFormatVersion) + ")");

  std::size_t tpos = data.size() - kTrailerSize;
  std::uint64_t footer_size = 0;
  std::uint32_t footer_crc = 0, trailer_magic = 0;
  get_fixed64(data, tpos, footer_size);
  get_fixed32(data, tpos, footer_crc);
  get_fixed32(data, tpos, trailer_magic);
  if (trailer_magic != kMagic)
    fail(path, "bad trailer magic: truncated or corrupt file");
  if (footer_size > data.size() - kHeaderSize - kTrailerSize)
    fail(path, "footer size exceeds file");

  const std::size_t footer_begin = data.size() - kTrailerSize - footer_size;
  const std::string_view footer = data.substr(footer_begin, footer_size);
  if (crc32c(footer) != footer_crc) fail(path, "footer checksum mismatch");

  std::size_t fpos = 0;
  std::uint64_t meta_count = 0;
  if (!get_varint(footer, fpos, meta_count)) fail(path, "malformed footer");
  for (std::uint64_t i = 0; i < meta_count; ++i) {
    std::string key, value;
    if (!get_string(footer, fpos, key) || !get_string(footer, fpos, value))
      fail(path, "malformed footer metadata");
    meta_.emplace_back(std::move(key), std::move(value));
  }

  std::uint64_t column_count = 0;
  if (!get_varint(footer, fpos, column_count)) fail(path, "malformed footer");
  for (std::uint64_t i = 0; i < column_count; ++i) {
    ColumnDesc c;
    if (!get_string(footer, fpos, c.dataset) ||
        !get_string(footer, fpos, c.column) || fpos + 2 > footer.size())
      fail(path, "malformed footer column index");
    c.type = static_cast<ColumnType>(footer[fpos++]);
    c.encoding = static_cast<Encoding>(footer[fpos++]);
    if (!get_varint(footer, fpos, c.rows) ||
        !get_varint(footer, fpos, c.offset) ||
        !get_varint(footer, fpos, c.size))
      fail(path, "malformed footer column index");
    if (!get_fixed32(footer, fpos, c.crc))
      fail(path, "malformed footer column index");
    if (c.offset < kHeaderSize || c.offset + c.size > footer_begin)
      fail(path, "column '" + c.dataset + "." + c.column +
                     "' extends outside the block region");
    columns_.push_back(std::move(c));
  }
  if (fpos != footer.size()) fail(path, "trailing bytes in footer");
}

bool Reader::has_meta(std::string_view key) const {
  for (const auto& [k, v] : meta_)
    if (k == key) return true;
  return false;
}

std::string Reader::meta_value(std::string_view key) const {
  for (const auto& [k, v] : meta_)
    if (k == key) return v;
  fail(path_, "missing metadata key '" + std::string(key) + "'");
}

std::string Reader::meta_or(std::string_view key,
                            std::string_view fallback) const {
  for (const auto& [k, v] : meta_)
    if (k == key) return v;
  return std::string(fallback);
}

bool Reader::has_column(std::string_view dataset,
                        std::string_view column) const {
  for (const auto& c : columns_)
    if (c.dataset == dataset && c.column == column) return true;
  return false;
}

const ColumnDesc& Reader::column(std::string_view dataset,
                                 std::string_view column) const {
  for (const auto& c : columns_)
    if (c.dataset == dataset && c.column == column) return c;
  fail(path_, "missing column '" + std::string(dataset) + "." +
                  std::string(column) + "'");
}

std::uint64_t Reader::dataset_rows(std::string_view dataset) const {
  std::uint64_t rows = 0;
  bool found = false;
  for (const auto& c : columns_) {
    if (c.dataset != dataset) continue;
    if (found && c.rows != rows)
      fail(path_, "dataset '" + std::string(dataset) +
                      "' has columns with differing row counts");
    rows = c.rows;
    found = true;
  }
  if (!found) fail(path_, "missing dataset '" + std::string(dataset) + "'");
  return rows;
}

std::string_view Reader::payload(const ColumnDesc& desc) const {
  return data_.substr(desc.offset, desc.size);
}

void Reader::check_crc(const ColumnDesc& desc) const {
  // Descs handed out by this reader are elements of columns_, so the
  // pointer difference is the block index into the lazy-check flags.
  const auto idx = static_cast<std::size_t>(&desc - columns_.data());
  if (idx >= columns_.size()) {  // foreign desc: verify, nothing to track
    if (crc32c(payload(desc)) != desc.crc)
      fail(path_, "checksum mismatch in block '" + desc.dataset + "." +
                      desc.column + "' (corrupt store)");
    return;
  }
  std::atomic<std::uint8_t>& flag = crc_checked_[idx];
  if (flag.load(std::memory_order_acquire) != 0) return;
  if (crc32c(payload(desc)) != desc.crc)
    fail(path_, "checksum mismatch in block '" + desc.dataset + "." +
                    desc.column + "' (corrupt store)");
  if (flag.exchange(1, std::memory_order_acq_rel) == 0) {
    lazy_checks_.fetch_add(1, std::memory_order_relaxed);
    if (obs::Observer* o = obs::Observer::installed())
      o->pipeline.store_crc_lazy_checks.inc();
  }
}

namespace {

// Decode failures from format.cpp carry no file context; re-throw with
// the path and column so a multi-shard merge failure names the corrupt
// shard, not just the block shape.
[[noreturn]] void rethrow_decode_error(const std::string& path,
                                       const ColumnDesc& c,
                                       const StoreError& e) {
  throw StoreError(path + ": column '" + c.dataset + "." + c.column +
                   "': " + e.what());
}

}  // namespace

std::vector<std::uint64_t> Reader::read_u64(std::string_view dataset,
                                            std::string_view col) const {
  const ColumnDesc& c = column(dataset, col);
  if (c.type != ColumnType::U64)
    fail(path_, "column '" + c.dataset + "." + c.column + "' is not u64");
  check_crc(c);
  try {
    return decode_u64_column(payload(c), c.encoding, c.rows);
  } catch (const StoreError& e) {
    rethrow_decode_error(path_, c, e);
  }
}

std::vector<double> Reader::read_f64(std::string_view dataset,
                                     std::string_view col) const {
  const ColumnDesc& c = column(dataset, col);
  if (c.type != ColumnType::F64)
    fail(path_, "column '" + c.dataset + "." + c.column + "' is not f64");
  check_crc(c);
  try {
    return decode_f64_column(payload(c), c.rows);
  } catch (const StoreError& e) {
    rethrow_decode_error(path_, c, e);
  }
}

std::vector<std::uint8_t> Reader::read_u8(std::string_view dataset,
                                          std::string_view col) const {
  const ColumnDesc& c = column(dataset, col);
  if (c.type != ColumnType::U8)
    fail(path_, "column '" + c.dataset + "." + c.column + "' is not u8");
  check_crc(c);
  try {
    return decode_u8_column(payload(c), c.rows);
  } catch (const StoreError& e) {
    rethrow_decode_error(path_, c, e);
  }
}

std::vector<std::string> Reader::read_strings(std::string_view dataset,
                                              std::string_view col) const {
  const ColumnDesc& c = column(dataset, col);
  if (c.type != ColumnType::Str)
    fail(path_, "column '" + c.dataset + "." + c.column + "' is not str");
  check_crc(c);
  try {
    return decode_string_column(payload(c), c.rows);
  } catch (const StoreError& e) {
    rethrow_decode_error(path_, c, e);
  }
}

void Reader::parallel_decode(const std::vector<std::function<void()>>& jobs) {
  exec::RegionOptions opts;
  opts.label = "store.read";
  exec::parallel_for(jobs.size(), opts, [&](const exec::ShardRange& range) {
    for (std::size_t i = range.begin; i < range.end; ++i) jobs[i]();
  });
}

void Reader::validate_all() const {
  exec::RegionOptions opts;
  opts.label = "store.validate";
  exec::parallel_for(columns_.size(), opts,
                     [&](const exec::ShardRange& range) {
                       for (std::size_t i = range.begin; i < range.end; ++i)
                         check_crc(columns_[i]);
                     });
}

}  // namespace ddos::store
