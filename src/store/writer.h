// DRS writer — streams column blocks to disk as they are added and
// appends the footer index + trailer on finish(). Columns are grouped
// into named datasets ("feed", "events", ...); metadata key/value pairs
// (provenance: config, seed, thread count, result counts) travel in the
// footer. Blocks are checksummed (CRC32C) as written.
#pragma once

#include <cstdint>
#include <fstream>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "store/format.h"

namespace ddos::store {

class Writer {
 public:
  /// Opens `path` for writing and emits the header. Check ok().
  explicit Writer(const std::string& path);

  Writer(const Writer&) = delete;
  Writer& operator=(const Writer&) = delete;

  bool ok() const { return static_cast<bool>(out_); }

  /// Footer metadata; later add_meta with the same key overwrites.
  void add_meta(std::string_view key, std::string_view value);

  /// Append one column block. Dataset/column pairs must be unique.
  void add_u64(std::string_view dataset, std::string_view column,
               std::span<const std::uint64_t> values,
               Encoding encoding = Encoding::DeltaVarint);
  void add_f64(std::string_view dataset, std::string_view column,
               std::span<const double> values);
  void add_u8(std::string_view dataset, std::string_view column,
              std::span<const std::uint8_t> values);
  void add_strings(std::string_view dataset, std::string_view column,
                   std::span<const std::string> values);

  /// Append a block whose payload was encoded incrementally elsewhere
  /// (store::EpochAppender builds payloads across streaming epochs). The
  /// caller vouches that `payload` is a valid encoding of `rows` rows.
  void add_encoded(std::string_view dataset, std::string_view column,
                   ColumnType type, Encoding encoding, std::uint64_t rows,
                   const std::string& payload) {
    append_block(dataset, column, type, encoding, rows, payload);
  }

  /// Write footer + trailer and flush. Returns stream health; the writer
  /// accepts no further columns afterwards.
  bool finish();

  /// Bytes emitted so far (file size after finish()).
  std::uint64_t bytes_written() const { return offset_; }
  std::size_t column_count() const { return columns_.size(); }

 private:
  void append_block(std::string_view dataset, std::string_view column,
                    ColumnType type, Encoding encoding, std::uint64_t rows,
                    const std::string& payload);

  std::ofstream out_;
  std::uint64_t offset_ = 0;
  std::vector<ColumnDesc> columns_;
  std::vector<std::pair<std::string, std::string>> meta_;
  bool finished_ = false;
};

}  // namespace ddos::store
