// Linear and logarithmic binned histograms, used by the figure benches
// (port distributions, duration modes, impact magnitude buckets).
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

namespace ddos::util {

/// Fixed-width linear histogram over [lo, hi). Out-of-range samples are
/// clamped into the first/last bin so totals always match sample counts.
class LinearHistogram {
 public:
  LinearHistogram(double lo, double hi, std::size_t bins);

  void add(double x, std::uint64_t weight = 1);

  std::size_t bin_count() const { return counts_.size(); }
  std::uint64_t bin(std::size_t i) const { return counts_.at(i); }
  double bin_lo(std::size_t i) const;
  double bin_hi(std::size_t i) const;
  std::uint64_t total() const { return total_; }
  /// Fraction of mass in bin i; 0.0 when the histogram is empty.
  double fraction(std::size_t i) const;
  /// Index of the fullest bin (first one on ties).
  std::size_t mode_bin() const;

  /// Add `other`'s counts bin-by-bin (per-thread histogram aggregation).
  /// Throws std::invalid_argument unless both histograms share the same
  /// (lo, hi, bins) shape.
  void merge(const LinearHistogram& other);

 private:
  double lo_;
  double hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

/// Log10-spaced histogram for heavy-tailed quantities (hosted-domain
/// counts, RTT impact factors). Bin i covers [base*r^i, base*r^(i+1)).
class LogHistogram {
 public:
  /// `decades_per_bin` of 1.0 gives order-of-magnitude bins as in Fig. 7/8.
  LogHistogram(double base, double decades_per_bin, std::size_t bins);

  void add(double x, std::uint64_t weight = 1);

  std::size_t bin_count() const { return counts_.size(); }
  std::uint64_t bin(std::size_t i) const { return counts_.at(i); }
  double bin_lo(std::size_t i) const;
  double bin_hi(std::size_t i) const;
  std::uint64_t total() const { return total_; }
  double fraction(std::size_t i) const;

  /// Add `other`'s counts bin-by-bin (per-thread histogram aggregation).
  /// Throws std::invalid_argument unless both histograms share the same
  /// (base, decades_per_bin, bins) shape.
  void merge(const LogHistogram& other);

  /// Value at quantile q in [0, 1], geometrically interpolated inside the
  /// containing bin (log-binned data, so log-linear interpolation is the
  /// faithful choice). 0 when the histogram is empty. Exact only up to
  /// bin resolution — fine for p50/p99/p999 latency reporting.
  double quantile(double q) const;

 private:
  double base_;
  double decades_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

/// Counter keyed by label — used for protocol/port tallies (Fig. 6) and
/// org/ASN leaderboards (Tables 4-6).
class CategoryCounter {
 public:
  void add(const std::string& key, std::uint64_t weight = 1);
  std::uint64_t count(const std::string& key) const;
  std::uint64_t total() const { return total_; }
  double fraction(const std::string& key) const;

  /// Top-k (key, count) pairs by descending count, key ascending on ties.
  std::vector<std::pair<std::string, std::uint64_t>> top(std::size_t k) const;
  std::size_t distinct() const { return counts_.size(); }

  /// Fold another counter in (per-shard counters reduced after a parallel
  /// region). Count maps are order-independent, so merge order is free.
  void merge(const CategoryCounter& other);

 private:
  std::map<std::string, std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace ddos::util
