// FlatMap / FlatSet — deterministic open-addressing hash containers for the
// pipeline's hot lookup paths (measurement folds, schedule load queries,
// registry joins).
//
// Why not std::unordered_map: the node-based layout costs one pointer chase
// per probe plus an allocation per insert, and the ~10^8 MeasurementStore
// folds of a longitudinal run are dominated by exactly those probes. FlatMap
// stores entries inline in a power-of-two slot array with linear probing, so
// a probe is one mix of the key plus a short contiguous scan — the dense
// array discipline that keeps index lookups at memory bandwidth.
//
// Slot placement uses the HIGH bits of the 64-bit hash (slot = hash >>
// (64 - log2 capacity)), not the low bits. The two spread keys equally
// well, but high-bit placement has a property batch ingest exploits: slot
// order equals hash-prefix order at every capacity, so a batch of probes
// sorted by hash prefix walks the slot array monotonically — sequential
// memory traffic the prefetcher can stream — instead of hopping randomly
// through a table much larger than cache (see MeasurementStore::add_batch).
//
// Determinism: iteration order (for_each) depends on the insertion/erase
// history, never on pointer values, so it is reproducible run-to-run; all
// serialization goes through sorted_items()/sorted_keys(), which are
// byte-identical for equal *contents* regardless of operation order.
//
// Deletion is tombstone-free: erase backward-shifts the displaced tail of
// the probe chain into the hole, so lookup cost never degrades as entries
// churn (finalize_day prunes thousands of window aggregates per day).
//
// Requirements: K and V default-constructible and move-assignable; K
// equality-comparable, and `<`-comparable for the sorted snapshots.
#pragma once

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace ddos::util {

namespace detail {

/// 64-bit finalizer (splitmix64 / murmur3 style): full-avalanche, so dense
/// integer keys (window indices, host-order IPs) spread across slots.
constexpr std::uint64_t flat_mix64(std::uint64_t v) {
  v ^= v >> 33;
  v *= 0xFF51AFD7ED558CCDull;
  v ^= v >> 33;
  v *= 0xC4CEB9FE1A85EC53ull;
  v ^= v >> 33;
  return v;
}

}  // namespace detail

/// Default hasher: integral/enum keys and value-types exposing `.value()`
/// (netsim::IPv4Addr) are mixed to a full 64-bit hash.
template <typename K>
struct FlatHash {
  constexpr std::uint64_t operator()(const K& k) const {
    if constexpr (requires { k.value(); }) {
      return detail::flat_mix64(static_cast<std::uint64_t>(k.value()));
    } else {
      return detail::flat_mix64(static_cast<std::uint64_t>(k));
    }
  }
};

template <typename K, typename V, typename Hash = FlatHash<K>>
class FlatMap {
 public:
  using Item = std::pair<K, V>;

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  /// Slot-array size (power of two); 0 before the first insert.
  std::size_t capacity() const { return slots_.size(); }

  void clear() {
    slots_.clear();
    used_.clear();
    size_ = 0;
    mask_ = 0;
    shift_ = 0;
  }

  /// The hash a key probes with — exposed so batch callers can pre-sort
  /// probes by hash prefix and hit the table in slot order.
  std::uint64_t hash_of(const K& key) const { return hash_(key); }

  /// Ensure `n` entries fit without a rehash (max load factor 3/4).
  void reserve(std::size_t n) {
    std::size_t cap = kMinCapacity;
    while (n * 4 > cap * 3) cap <<= 1;
    if (cap > slots_.size()) rehash(cap);
  }

  V* find(const K& key) {
    const std::size_t i = index_of(key);
    return i == kNpos ? nullptr : &slots_[i].second;
  }
  const V* find(const K& key) const {
    const std::size_t i = index_of(key);
    return i == kNpos ? nullptr : &slots_[i].second;
  }
  bool contains(const K& key) const { return index_of(key) != kNpos; }

  /// Insert default-or-constructed value if absent; returns (slot, inserted).
  /// The returned pointer is valid until the next rehash (insert past the
  /// load factor) or erase.
  template <typename... Args>
  std::pair<V*, bool> try_emplace(const K& key, Args&&... args) {
    if (slots_.empty()) {
      rehash(kMinCapacity);
    } else if ((size_ + 1) * 4 > slots_.size() * 3) {
      rehash(slots_.size() * 2);
    }
    std::size_t i = home_of(key);
    while (used_[i]) {
      if (slots_[i].first == key) return {&slots_[i].second, false};
      i = (i + 1) & mask_;
    }
    slots_[i].first = key;
    slots_[i].second = V(std::forward<Args>(args)...);
    used_[i] = 1;
    ++size_;
    return {&slots_[i].second, true};
  }

  V& operator[](const K& key) { return *try_emplace(key).first; }

  void insert_or_assign(const K& key, V value) {
    *try_emplace(key).first = std::move(value);
  }

  /// Erase by key; backward-shifts the chain so no tombstones remain.
  bool erase(const K& key) {
    const std::size_t i = index_of(key);
    if (i == kNpos) return false;
    erase_at(i);
    return true;
  }

  /// Erase every entry `pred(key, value)` accepts; returns the count.
  template <typename Pred>
  std::size_t erase_if(Pred&& pred) {
    // Two passes: backward-shift moves entries across the scan position,
    // so erasing mid-iteration could skip or double-visit survivors.
    std::vector<K> doomed;
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      if (used_[i] && pred(slots_[i].first, slots_[i].second))
        doomed.push_back(slots_[i].first);
    }
    for (const K& k : doomed) erase(k);
    return doomed.size();
  }

  /// Visit entries in slot order (reproducible for an identical operation
  /// history, but NOT sorted — serialize via sorted_items()).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      if (used_[i]) fn(slots_[i].first, slots_[i].second);
    }
  }
  template <typename Fn>
  void for_each(Fn&& fn) {
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      if (used_[i]) fn(slots_[i].first, slots_[i].second);
    }
  }

  /// Snapshot ascending by key — identical bytes for identical contents,
  /// whatever the insertion/erase order. All persistence goes through here.
  std::vector<Item> sorted_items() const {
    std::vector<Item> out;
    out.reserve(size_);
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      if (used_[i]) out.push_back(slots_[i]);
    }
    std::sort(out.begin(), out.end(),
              [](const Item& a, const Item& b) { return a.first < b.first; });
    return out;
  }

 private:
  static constexpr std::size_t kMinCapacity = 16;
  static constexpr std::size_t kNpos = static_cast<std::size_t>(-1);

  /// Home slot: hash high bits, so slot order tracks hash-prefix order.
  std::size_t home_of(const K& key) const {
    return static_cast<std::size_t>(hash_(key) >> shift_);
  }

  std::size_t index_of(const K& key) const {
    if (size_ == 0) return kNpos;
    std::size_t i = home_of(key);
    while (used_[i]) {
      if (slots_[i].first == key) return i;
      i = (i + 1) & mask_;
    }
    return kNpos;
  }

  void erase_at(std::size_t i) {
    // Backward-shift deletion (Knuth 6.4 R): walk the chain after the hole
    // and move back every entry whose home slot lies cyclically outside
    // (i, j] — exactly those a lookup would no longer reach past the hole.
    std::size_t j = i;
    while (true) {
      used_[i] = 0;
      slots_[i] = Item{};
      while (true) {
        j = (j + 1) & mask_;
        if (!used_[j]) {
          --size_;
          return;
        }
        const std::size_t home = home_of(slots_[j].first);
        const bool in_chain =
            (i < j) ? (home > i && home <= j) : (home > i || home <= j);
        if (!in_chain) break;
      }
      slots_[i] = std::move(slots_[j]);
      used_[i] = 1;
      i = j;
    }
  }

  void rehash(std::size_t new_cap) {
    assert((new_cap & (new_cap - 1)) == 0 && new_cap >= kMinCapacity);
    std::vector<Item> old_slots = std::move(slots_);
    std::vector<std::uint8_t> old_used = std::move(used_);
    slots_.assign(new_cap, Item{});
    used_.assign(new_cap, 0);
    mask_ = new_cap - 1;
    shift_ = 64 - static_cast<std::uint32_t>(std::countr_zero(new_cap));
    for (std::size_t s = 0; s < old_slots.size(); ++s) {
      if (!old_used[s]) continue;
      std::size_t i = home_of(old_slots[s].first);
      while (used_[i]) i = (i + 1) & mask_;
      slots_[i] = std::move(old_slots[s]);
      used_[i] = 1;
    }
  }

  std::vector<Item> slots_;
  std::vector<std::uint8_t> used_;
  std::size_t size_ = 0;
  std::size_t mask_ = 0;
  std::uint32_t shift_ = 0;  // 64 - log2(capacity); set by rehash
  [[no_unique_address]] Hash hash_;
};

/// FlatSet — FlatMap with no payload; same probing and erase discipline.
template <typename K, typename Hash = FlatHash<K>>
class FlatSet {
 public:
  std::size_t size() const { return map_.size(); }
  bool empty() const { return map_.empty(); }
  std::size_t capacity() const { return map_.capacity(); }
  void clear() { map_.clear(); }
  void reserve(std::size_t n) { map_.reserve(n); }

  /// True when newly inserted.
  bool insert(const K& key) { return map_.try_emplace(key).second; }
  bool contains(const K& key) const { return map_.contains(key); }
  bool erase(const K& key) { return map_.erase(key); }

  template <typename Fn>
  void for_each(Fn&& fn) const {
    map_.for_each([&fn](const K& k, const Unit&) { fn(k); });
  }

  /// Keys ascending — deterministic for identical contents.
  std::vector<K> sorted_keys() const {
    std::vector<K> out;
    out.reserve(map_.size());
    map_.for_each([&out](const K& k, const Unit&) { out.push_back(k); });
    std::sort(out.begin(), out.end());
    return out;
  }

 private:
  struct Unit {};
  FlatMap<K, Unit, Hash> map_;
};

}  // namespace ddos::util
