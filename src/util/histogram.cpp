#include "util/histogram.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ddos::util {

LinearHistogram::LinearHistogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  if (bins == 0) throw std::invalid_argument("LinearHistogram: bins == 0");
  if (!(hi > lo)) throw std::invalid_argument("LinearHistogram: hi <= lo");
}

void LinearHistogram::add(double x, std::uint64_t weight) {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  auto idx = static_cast<long>(std::floor((x - lo_) / width));
  idx = std::clamp(idx, 0L, static_cast<long>(counts_.size()) - 1);
  counts_[static_cast<std::size_t>(idx)] += weight;
  total_ += weight;
}

double LinearHistogram::bin_lo(std::size_t i) const {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(i);
}

double LinearHistogram::bin_hi(std::size_t i) const {
  return bin_lo(i + 1);
}

double LinearHistogram::fraction(std::size_t i) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(counts_.at(i)) / static_cast<double>(total_);
}

std::size_t LinearHistogram::mode_bin() const {
  return static_cast<std::size_t>(
      std::max_element(counts_.begin(), counts_.end()) - counts_.begin());
}

void LinearHistogram::merge(const LinearHistogram& other) {
  if (lo_ != other.lo_ || hi_ != other.hi_ ||
      counts_.size() != other.counts_.size()) {
    throw std::invalid_argument("LinearHistogram::merge: shape mismatch");
  }
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  total_ += other.total_;
}

LogHistogram::LogHistogram(double base, double decades_per_bin,
                           std::size_t bins)
    : base_(base), decades_(decades_per_bin), counts_(bins, 0) {
  if (bins == 0) throw std::invalid_argument("LogHistogram: bins == 0");
  if (base <= 0.0) throw std::invalid_argument("LogHistogram: base <= 0");
  if (decades_per_bin <= 0.0)
    throw std::invalid_argument("LogHistogram: decades_per_bin <= 0");
}

void LogHistogram::add(double x, std::uint64_t weight) {
  long idx = 0;
  if (x > 0.0) {
    idx = static_cast<long>(std::floor(std::log10(x / base_) / decades_));
  }
  idx = std::clamp(idx, 0L, static_cast<long>(counts_.size()) - 1);
  counts_[static_cast<std::size_t>(idx)] += weight;
  total_ += weight;
}

double LogHistogram::bin_lo(std::size_t i) const {
  return base_ * std::pow(10.0, decades_ * static_cast<double>(i));
}

double LogHistogram::bin_hi(std::size_t i) const { return bin_lo(i + 1); }

double LogHistogram::fraction(std::size_t i) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(counts_.at(i)) / static_cast<double>(total_);
}

void LogHistogram::merge(const LogHistogram& other) {
  if (base_ != other.base_ || decades_ != other.decades_ ||
      counts_.size() != other.counts_.size()) {
    throw std::invalid_argument("LogHistogram::merge: shape mismatch");
  }
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  total_ += other.total_;
}

double LogHistogram::quantile(double q) const {
  if (total_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const auto rank = std::min<std::uint64_t>(
      total_ - 1,
      static_cast<std::uint64_t>(q * static_cast<double>(total_)));
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    cum += counts_[i];
    if (cum > rank) {
      const std::uint64_t into_bin = rank - (cum - counts_[i]);
      const double p = (static_cast<double>(into_bin) + 0.5) /
                       static_cast<double>(counts_[i]);
      return bin_lo(i) * std::pow(bin_hi(i) / bin_lo(i), p);
    }
  }
  return bin_hi(counts_.size() - 1);
}

void CategoryCounter::add(const std::string& key, std::uint64_t weight) {
  counts_[key] += weight;
  total_ += weight;
}

void CategoryCounter::merge(const CategoryCounter& other) {
  for (const auto& [key, n] : other.counts_) counts_[key] += n;
  total_ += other.total_;
}

std::uint64_t CategoryCounter::count(const std::string& key) const {
  const auto it = counts_.find(key);
  return it == counts_.end() ? 0 : it->second;
}

double CategoryCounter::fraction(const std::string& key) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(count(key)) / static_cast<double>(total_);
}

std::vector<std::pair<std::string, std::uint64_t>> CategoryCounter::top(
    std::size_t k) const {
  std::vector<std::pair<std::string, std::uint64_t>> all(counts_.begin(),
                                                         counts_.end());
  std::sort(all.begin(), all.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  if (all.size() > k) all.resize(k);
  return all;
}

}  // namespace ddos::util
