// Minimal command-line flag parser for the CLI tool and examples.
// Supports --name value, --name=value, boolean --name, positional
// arguments, and generated help text. No external dependencies.
#pragma once

#include <cstdint>
#include <limits>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace ddos::util {

class FlagParser {
 public:
  explicit FlagParser(std::string program_description);

  /// Register flags with defaults; `help` appears in usage output.
  void add_string(const std::string& name, std::string default_value,
                  std::string help);
  void add_int(const std::string& name, std::int64_t default_value,
               std::string help);
  /// Unsigned integer with inclusive range validation: values outside
  /// [min_value, max_value] (or non-numeric input) fail the parse with a
  /// message naming the accepted range.
  void add_uint(const std::string& name, std::uint64_t default_value,
                std::string help, std::uint64_t min_value = 0,
                std::uint64_t max_value = UINT64_MAX);
  /// Double with optional inclusive range validation, matching add_uint's
  /// behaviour: out-of-range or non-numeric values fail the parse with a
  /// message naming the accepted range. Works for both `--name value` and
  /// `--name=value` spellings (all flag types accept both).
  void add_double(const std::string& name, double default_value,
                  std::string help,
                  double min_value = -std::numeric_limits<double>::infinity(),
                  double max_value = std::numeric_limits<double>::infinity());
  void add_bool(const std::string& name, std::string help);

  /// Parse argv (excluding argv[0]). Returns false — with `error()` set —
  /// on unknown flags or unparseable values.
  bool parse(int argc, const char* const* argv);
  bool parse(const std::vector<std::string>& args);

  std::string get_string(const std::string& name) const;
  std::int64_t get_int(const std::string& name) const;
  std::uint64_t get_uint(const std::string& name) const;
  double get_double(const std::string& name) const;
  bool get_bool(const std::string& name) const;

  const std::vector<std::string>& positional() const { return positional_; }
  const std::string& error() const { return error_; }

  /// "--help" requested during parse.
  bool help_requested() const { return help_requested_; }
  std::string usage() const;

 private:
  enum class Type { String, Int, Uint, Double, Bool };
  struct Flag {
    Type type;
    std::string value;  // textual; parsed on get
    std::string default_value;
    std::string help;
    std::uint64_t min_value = 0;           // Uint only
    std::uint64_t max_value = UINT64_MAX;  // Uint only
    double min_double = -std::numeric_limits<double>::infinity();  // Double
    double max_double = std::numeric_limits<double>::infinity();   // Double
  };

  bool set_value(const std::string& name, const std::string& value);
  /// "unknown flag --x; valid flags: --a --b ..." — typos fail loudly with
  /// the full registered-flag list.
  std::string unknown_flag_error(const std::string& name) const;

  std::string description_;
  std::map<std::string, Flag> flags_;
  std::vector<std::string> positional_;
  std::string error_;
  bool help_requested_ = false;
};

}  // namespace ddos::util
