#include "util/csv.h"

#include "util/strings.h"

namespace ddos::util {

CsvWriter::CsvWriter(std::ostream& out, char delim)
    : out_(out), delim_(delim) {}

std::string CsvWriter::escape(const std::string& field) const {
  const bool needs_quote =
      field.find(delim_) != std::string::npos ||
      field.find('"') != std::string::npos ||
      field.find('\n') != std::string::npos ||
      field.find('\r') != std::string::npos;
  if (!needs_quote) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out.push_back('"');
  return out;
}

void CsvWriter::write_row(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i) out_.put(delim_);
    out_ << escape(fields[i]);
  }
  out_.put('\n');
}

std::vector<std::string> parse_csv_line(std::string_view line, char delim) {
  std::vector<std::string> fields;
  std::string cur;
  bool in_quotes = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cur.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cur.push_back(c);
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == delim) {
      fields.push_back(std::move(cur));
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  fields.push_back(std::move(cur));
  return fields;
}

std::vector<std::vector<std::string>> parse_csv(std::string_view text,
                                                char delim) {
  std::vector<std::vector<std::string>> rows;
  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string_view::npos) end = text.size();
    std::string_view line = text.substr(start, end - start);
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    if (!line.empty()) rows.push_back(parse_csv_line(line, delim));
    start = end + 1;
  }
  return rows;
}

}  // namespace ddos::util
