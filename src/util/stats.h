// Basic descriptive and correlation statistics used throughout the
// analysis pipeline (Impact_on_RTT aggregation, Fig. 9/10 correlations).
#pragma once

#include <cstddef>
#include <span>
#include <utility>
#include <vector>

namespace ddos::util {

/// Arithmetic mean; returns 0.0 for an empty range.
double mean(std::span<const double> xs);

/// Unbiased sample variance (n-1 denominator); 0.0 when n < 2.
double variance(std::span<const double> xs);

/// Sample standard deviation.
double stddev(std::span<const double> xs);

/// Linear-interpolated percentile, p in [0,100]. Sorts a copy.
/// Returns 0.0 for an empty range.
double percentile(std::span<const double> xs, double p);

/// Median (50th percentile).
double median(std::span<const double> xs);

/// Pearson product-moment correlation of two equal-length series.
/// Returns 0.0 when either series is degenerate (n < 2 or zero variance).
double pearson(std::span<const double> xs, std::span<const double> ys);

/// Spearman rank correlation (Pearson over average ranks, ties averaged).
double spearman(std::span<const double> xs, std::span<const double> ys);

/// Average ranks (1-based) with ties receiving the mean of their positions.
std::vector<double> ranks(std::span<const double> xs);

/// Minimum / maximum; 0.0 for empty ranges.
double min_of(std::span<const double> xs);
double max_of(std::span<const double> xs);

/// Empirical CDF over a sample — figure-series helper (impact and
/// duration distributions are naturally read as CDFs).
class Ecdf {
 public:
  explicit Ecdf(std::span<const double> xs);

  std::size_t size() const { return sorted_.size(); }
  bool empty() const { return sorted_.empty(); }

  /// P(X <= x); 0.0 on an empty sample.
  double at(double x) const;
  /// Inverse: smallest sample value v with P(X <= v) >= q, q in (0, 1].
  double quantile(double q) const;
  /// Evenly spaced (value, cumulative probability) points for plotting.
  std::vector<std::pair<double, double>> curve(std::size_t points) const;

 private:
  std::vector<double> sorted_;
};

/// Streaming accumulator for mean / min / max / count without storing
/// samples. Used by the 5-minute NSSet aggregation where sample volume
/// is large (one entry per OpenINTEL query).
class RunningStats {
 public:
  /// The accumulator's complete internal state, exposed so persistence
  /// layers (the DRS dataset store) can round-trip it bit-for-bit —
  /// recomputing Welford state from samples would not reproduce the
  /// original accumulation order.
  struct Raw {
    std::size_t n = 0;
    double sum = 0.0;
    double m = 0.0;
    double m2 = 0.0;
    double min = 0.0;
    double max = 0.0;
  };

  void add(double x);
  void merge(const RunningStats& other);

  Raw raw() const { return {n_, sum_, m_, m2_, min_, max_}; }
  static RunningStats from_raw(const Raw& r) {
    RunningStats s;
    s.n_ = r.n;
    s.sum_ = r.sum;
    s.m_ = r.m;
    s.m2_ = r.m2;
    s.min_ = r.min;
    s.max_ = r.max;
    return s;
  }

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? sum_ / static_cast<double>(n_) : 0.0; }
  double sum() const { return sum_; }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  /// Sample variance via Welford; 0.0 when n < 2.
  double variance() const;
  bool empty() const { return n_ == 0; }

 private:
  std::size_t n_ = 0;
  double sum_ = 0.0;
  double m_ = 0.0;    // Welford running mean
  double m2_ = 0.0;   // Welford running sum of squared deltas
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace ddos::util
