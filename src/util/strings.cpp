#include "util/strings.h"

#include <charconv>
#include <cmath>
#include <cstdio>

namespace ddos::util {

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string_view trim(std::string_view s) {
  const auto is_space = [](char c) {
    return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' ||
           c == '\v';
  };
  while (!s.empty() && is_space(s.front())) s.remove_prefix(1);
  while (!s.empty() && is_space(s.back())) s.remove_suffix(1);
  return s;
}

namespace {
char ascii_lower(char c) {
  return (c >= 'A' && c <= 'Z') ? static_cast<char>(c - 'A' + 'a') : c;
}
}  // namespace

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (ascii_lower(a[i]) != ascii_lower(b[i])) return false;
  }
  return true;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = ascii_lower(c);
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

bool parse_u64(std::string_view s, std::uint64_t& out) {
  s = trim(s);
  if (s.empty()) return false;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), out);
  return ec == std::errc{} && ptr == s.data() + s.size();
}

bool parse_double(std::string_view s, double& out) {
  s = trim(s);
  if (s.empty()) return false;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), out);
  return ec == std::errc{} && ptr == s.data() + s.size();
}

std::string with_commas(std::uint64_t v) {
  std::string digits = std::to_string(v);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  const std::size_t first = digits.size() % 3 == 0 ? 3 : digits.size() % 3;
  for (std::size_t i = 0; i < digits.size(); ++i) {
    if (i != 0 && (i - first) % 3 == 0 && i >= first) out.push_back(',');
    out.push_back(digits[i]);
  }
  return out;
}

std::string format_fixed(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string format_bps(double bps) {
  static constexpr const char* kUnits[] = {"bps", "Kbps", "Mbps", "Gbps",
                                           "Tbps"};
  int unit = 0;
  while (bps >= 1000.0 && unit < 4) {
    bps /= 1000.0;
    ++unit;
  }
  const int prec = bps >= 100.0 ? 0 : (bps >= 10.0 ? 1 : 2);
  return format_fixed(bps, prec) + " " + kUnits[unit];
}

std::string format_count(double v) {
  static constexpr const char* kUnits[] = {"", "K", "M", "B"};
  int unit = 0;
  while (std::abs(v) >= 1000.0 && unit < 3) {
    v /= 1000.0;
    ++unit;
  }
  const int prec = std::abs(v) >= 100.0 ? 0 : (std::abs(v) >= 10.0 ? 1 : 2);
  std::string s = format_fixed(v, prec);
  // Trim trailing zeros after the decimal point ("5.790" -> "5.79").
  if (s.find('.') != std::string::npos) {
    while (s.back() == '0') s.pop_back();
    if (s.back() == '.') s.pop_back();
  }
  return s + kUnits[unit];
}

}  // namespace ddos::util
