#include "util/table.h"

#include <algorithm>
#include <sstream>

namespace ddos::util {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

void TextTable::add_separator() { rows_.emplace_back(); }

void TextTable::print(std::ostream& out) const {
  std::vector<std::size_t> widths(headers_.size(), 0);
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());
  }
  const auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string{};
      out << cell;
      if (c + 1 < headers_.size())
        out << std::string(widths[c] - cell.size() + 2, ' ');
    }
    out << '\n';
  };
  emit(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out << std::string(widths[c], '-');
    if (c + 1 < headers_.size()) out << "  ";
  }
  out << '\n';
  for (const auto& row : rows_) {
    if (row.empty()) {
      out << '\n';
    } else {
      emit(row);
    }
  }
}

std::string TextTable::to_string() const {
  std::ostringstream oss;
  print(oss);
  return oss.str();
}

std::string ascii_bar(double fraction, std::size_t width) {
  fraction = std::clamp(fraction, 0.0, 1.0);
  const auto filled = static_cast<std::size_t>(fraction * static_cast<double>(width) + 0.5);
  std::string bar(filled, '#');
  bar.append(width - filled, '.');
  return bar;
}

std::string banner(const std::string& title, std::size_t width) {
  std::string s = "== " + title + " ";
  if (s.size() < width) s.append(width - s.size(), '=');
  return s;
}

}  // namespace ddos::util
