// Aligned plain-text table printer used by the bench harness to emit
// paper-vs-measured rows for every table and figure.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace ddos::util {

/// Accumulates rows of string cells and prints them column-aligned with a
/// header rule, e.g.:
///
///   Month   #DNS Attacks   #Other
///   ------  -------------  -------
///   2020-11 2,550 (1.63%)  156,884
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);
  /// Blank separator row (renders as an empty line inside the table body).
  void add_separator();

  void print(std::ostream& out) const;
  std::string to_string() const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;  // empty vector == separator
};

/// Render a 0..1 fraction as a fixed-width ASCII bar, for figure benches.
std::string ascii_bar(double fraction, std::size_t width = 40);

/// Section banner: "== title ==============".
std::string banner(const std::string& title, std::size_t width = 72);

}  // namespace ddos::util
