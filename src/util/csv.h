// Minimal RFC-4180-ish CSV reader/writer for exporting bench series and
// round-tripping simulated feed snapshots.
#pragma once

#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace ddos::util {

/// Streaming CSV writer. Quotes fields containing delimiter/quote/newline.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& out, char delim = ',');

  /// Write one row; fields are escaped as needed.
  void write_row(const std::vector<std::string>& fields);

  /// Convenience variadic row from heterogeneous printable values.
  template <typename... Ts>
  void row(const Ts&... vals) {
    std::vector<std::string> fields;
    fields.reserve(sizeof...(vals));
    (fields.push_back(to_field(vals)), ...);
    write_row(fields);
  }

 private:
  static std::string to_field(const std::string& s) { return s; }
  static std::string to_field(const char* s) { return s; }
  static std::string to_field(std::string_view s) { return std::string(s); }
  template <typename T>
  static std::string to_field(const T& v) {
    return std::to_string(v);
  }

  std::string escape(const std::string& field) const;

  std::ostream& out_;
  char delim_;
};

/// Parse one CSV line honouring quotes and doubled-quote escapes.
std::vector<std::string> parse_csv_line(std::string_view line, char delim = ',');

/// Parse a whole CSV document (no embedded newlines inside quoted fields).
std::vector<std::vector<std::string>> parse_csv(std::string_view text,
                                                char delim = ',');

}  // namespace ddos::util
