#include "util/flags.h"

#include <sstream>

#include "util/strings.h"

namespace ddos::util {

FlagParser::FlagParser(std::string program_description)
    : description_(std::move(program_description)) {}

void FlagParser::add_string(const std::string& name,
                            std::string default_value, std::string help) {
  flags_[name] = Flag{Type::String, default_value, std::move(default_value),
                      std::move(help)};
}

void FlagParser::add_int(const std::string& name, std::int64_t default_value,
                         std::string help) {
  const std::string v = std::to_string(default_value);
  flags_[name] = Flag{Type::Int, v, v, std::move(help)};
}

void FlagParser::add_uint(const std::string& name, std::uint64_t default_value,
                          std::string help, std::uint64_t min_value,
                          std::uint64_t max_value) {
  const std::string v = std::to_string(default_value);
  Flag flag{Type::Uint, v, v, std::move(help)};
  flag.min_value = min_value;
  flag.max_value = max_value;
  flags_[name] = std::move(flag);
}

void FlagParser::add_double(const std::string& name, double default_value,
                            std::string help, double min_value,
                            double max_value) {
  const std::string v = format_fixed(default_value, 6);
  Flag flag{Type::Double, v, v, std::move(help)};
  flag.min_double = min_value;
  flag.max_double = max_value;
  flags_[name] = std::move(flag);
}

void FlagParser::add_bool(const std::string& name, std::string help) {
  flags_[name] = Flag{Type::Bool, "false", "false", std::move(help)};
}

std::string FlagParser::unknown_flag_error(const std::string& name) const {
  std::string msg = "unknown flag --" + name + "; valid flags:";
  for (const auto& [known, flag] : flags_) {
    msg += " --" + known;
  }
  return msg;
}

bool FlagParser::set_value(const std::string& name, const std::string& value) {
  const auto it = flags_.find(name);
  if (it == flags_.end()) {
    error_ = unknown_flag_error(name);
    return false;
  }
  switch (it->second.type) {
    case Type::Int: {
      std::uint64_t u = 0;
      double d = 0.0;
      if (!parse_u64(value, u) && !(parse_double(value, d))) {
        error_ = "flag --" + name + " expects an integer, got '" + value + "'";
        return false;
      }
      break;
    }
    case Type::Uint: {
      std::uint64_t u = 0;
      if (!parse_u64(value, u) || u < it->second.min_value ||
          u > it->second.max_value) {
        std::string range = "[" + std::to_string(it->second.min_value) + ", ";
        range += it->second.max_value == UINT64_MAX
                     ? "inf)"
                     : std::to_string(it->second.max_value) + "]";
        error_ = "flag --" + name + " expects an unsigned integer in " +
                 range + ", got '" + value + "'";
        return false;
      }
      break;
    }
    case Type::Double: {
      double d = 0.0;
      if (!parse_double(value, d) || d < it->second.min_double ||
          d > it->second.max_double) {
        constexpr double kInf = std::numeric_limits<double>::infinity();
        std::string expected = "a number";
        if (it->second.min_double > -kInf || it->second.max_double < kInf) {
          expected += " in ";
          expected += it->second.min_double > -kInf
                          ? "[" + format_fixed(it->second.min_double, 6)
                          : "(-inf";
          expected += ", ";
          expected += it->second.max_double < kInf
                          ? format_fixed(it->second.max_double, 6) + "]"
                          : "inf)";
        }
        error_ = "flag --" + name + " expects " + expected + ", got '" +
                 value + "'";
        return false;
      }
      break;
    }
    case Type::Bool:
      if (!iequals(value, "true") && !iequals(value, "false")) {
        error_ = "flag --" + name + " expects true/false, got '" + value + "'";
        return false;
      }
      break;
    case Type::String:
      break;
  }
  it->second.value = value;
  return true;
}

bool FlagParser::parse(const std::vector<std::string>& args) {
  for (std::size_t i = 0; i < args.size(); ++i) {
    std::string_view arg = args[i];
    if (arg == "--help" || arg == "-h") {
      help_requested_ = true;
      continue;
    }
    if (!starts_with(arg, "--")) {
      positional_.emplace_back(arg);
      continue;
    }
    arg.remove_prefix(2);
    const auto eq = arg.find('=');
    if (eq != std::string_view::npos) {
      if (!set_value(std::string(arg.substr(0, eq)),
                     std::string(arg.substr(eq + 1)))) {
        return false;
      }
      continue;
    }
    const std::string name(arg);
    const auto it = flags_.find(name);
    if (it == flags_.end()) {
      error_ = unknown_flag_error(name);
      return false;
    }
    if (it->second.type == Type::Bool) {
      it->second.value = "true";
      continue;
    }
    if (i + 1 >= args.size()) {
      error_ = "flag --" + name + " requires a value";
      return false;
    }
    if (!set_value(name, args[++i])) return false;
  }
  return true;
}

bool FlagParser::parse(int argc, const char* const* argv) {
  std::vector<std::string> args;
  for (int i = 0; i < argc; ++i) args.emplace_back(argv[i]);
  return parse(args);
}

std::string FlagParser::get_string(const std::string& name) const {
  return flags_.at(name).value;
}

std::int64_t FlagParser::get_int(const std::string& name) const {
  double d = 0.0;
  parse_double(flags_.at(name).value, d);
  return static_cast<std::int64_t>(d);
}

std::uint64_t FlagParser::get_uint(const std::string& name) const {
  std::uint64_t u = 0;
  parse_u64(flags_.at(name).value, u);
  return u;
}

double FlagParser::get_double(const std::string& name) const {
  double d = 0.0;
  parse_double(flags_.at(name).value, d);
  return d;
}

bool FlagParser::get_bool(const std::string& name) const {
  return iequals(flags_.at(name).value, "true");
}

std::string FlagParser::usage() const {
  std::ostringstream out;
  out << description_ << "\n\nflags:\n";
  for (const auto& [name, flag] : flags_) {
    out << "  --" << name;
    if (flag.type != Type::Bool) out << " <" << flag.default_value << ">";
    out << "\n      " << flag.help << "\n";
  }
  return out.str();
}

}  // namespace ddos::util
