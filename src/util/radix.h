// Stable LSD radix sort for (uint64 key, uint32 payload) pairs — the
// batched-ingest scratch of MeasurementStore::add_batch. Byte planes that
// are constant across the whole input are skipped: batch keys share their
// high bytes (nsset ids are small, windows of one day share a base), so a
// typical batch sorts in 2–4 counting passes instead of 8, an order of
// magnitude cheaper than comparison sorting the same pairs.
//
// Stability is load-bearing: equal keys keep their input order, which is
// what lets add_batch fold each key-run in arrival order and reproduce
// per-measurement ingest state bit for bit.
#pragma once

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

namespace ddos::util {

using KeyedIndex = std::pair<std::uint64_t, std::uint32_t>;

/// Sort `v` ascending by key (stable). `tmp` is caller-owned scratch so a
/// hot loop can reuse one allocation across calls.
inline void radix_sort_keyed(std::vector<KeyedIndex>& v,
                             std::vector<KeyedIndex>& tmp) {
  const std::size_t n = v.size();
  if (n < 2) return;
  if (n < 64) {
    // Counting passes cost ~256 slots of bookkeeping each; below this size
    // a comparison sort wins. Stable to preserve equal-key arrival order.
    std::stable_sort(v.begin(), v.end(),
                     [](const KeyedIndex& a, const KeyedIndex& b) {
                       return a.first < b.first;
                     });
    return;
  }

  std::uint64_t or_all = 0;
  std::uint64_t and_all = ~std::uint64_t{0};
  for (const auto& [key, idx] : v) {
    or_all |= key;
    and_all &= key;
  }
  const std::uint64_t varying = or_all ^ and_all;  // bytes worth sorting
  if (varying == 0) return;

  tmp.resize(n);
  std::vector<KeyedIndex>* src = &v;
  std::vector<KeyedIndex>* dst = &tmp;
  for (int shift = 0; shift < 64; shift += 8) {
    if (((varying >> shift) & 0xFF) == 0) continue;
    std::uint32_t counts[256] = {};
    for (const auto& [key, idx] : *src) ++counts[(key >> shift) & 0xFF];
    std::uint32_t running = 0;
    for (std::uint32_t& c : counts) {
      const std::uint32_t here = c;
      c = running;
      running += here;
    }
    for (const auto& item : *src)
      (*dst)[counts[(item.first >> shift) & 0xFF]++] = item;
    std::swap(src, dst);
  }
  if (src != &v) v.swap(tmp);
}

}  // namespace ddos::util
