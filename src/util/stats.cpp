#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace ddos::util {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  return std::accumulate(xs.begin(), xs.end(), 0.0) /
         static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return acc / static_cast<double>(xs.size() - 1);
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double percentile(std::span<const double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  if (p <= 0.0) return sorted.front();
  if (p >= 100.0) return sorted.back();
  const double pos = (p / 100.0) * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= sorted.size()) return sorted.back();
  return sorted[lo] * (1.0 - frac) + sorted[lo + 1] * frac;
}

double median(std::span<const double> xs) { return percentile(xs, 50.0); }

double pearson(std::span<const double> xs, std::span<const double> ys) {
  const std::size_t n = std::min(xs.size(), ys.size());
  if (n < 2) return 0.0;
  const double mx = mean(xs.subspan(0, n));
  const double my = mean(ys.subspan(0, n));
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

std::vector<double> ranks(std::span<const double> xs) {
  const std::size_t n = xs.size();
  std::vector<std::size_t> idx(n);
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  std::sort(idx.begin(), idx.end(),
            [&](std::size_t a, std::size_t b) { return xs[a] < xs[b]; });
  std::vector<double> r(n, 0.0);
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && xs[idx[j + 1]] == xs[idx[i]]) ++j;
    // Average rank for the tie group [i, j] (1-based ranks).
    const double avg = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (std::size_t k = i; k <= j; ++k) r[idx[k]] = avg;
    i = j + 1;
  }
  return r;
}

double spearman(std::span<const double> xs, std::span<const double> ys) {
  const std::size_t n = std::min(xs.size(), ys.size());
  if (n < 2) return 0.0;
  const auto rx = ranks(xs.subspan(0, n));
  const auto ry = ranks(ys.subspan(0, n));
  return pearson(rx, ry);
}

double min_of(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  return *std::min_element(xs.begin(), xs.end());
}

double max_of(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  return *std::max_element(xs.begin(), xs.end());
}

Ecdf::Ecdf(std::span<const double> xs) : sorted_(xs.begin(), xs.end()) {
  std::sort(sorted_.begin(), sorted_.end());
}

double Ecdf::at(double x) const {
  if (sorted_.empty()) return 0.0;
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

double Ecdf::quantile(double q) const {
  if (sorted_.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const auto idx = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(sorted_.size())));
  return sorted_[idx == 0 ? 0 : idx - 1];
}

std::vector<std::pair<double, double>> Ecdf::curve(std::size_t points) const {
  std::vector<std::pair<double, double>> out;
  if (sorted_.empty() || points == 0) return out;
  out.reserve(points);
  for (std::size_t i = 1; i <= points; ++i) {
    const double q = static_cast<double>(i) / static_cast<double>(points);
    out.emplace_back(quantile(q), q);
  }
  return out;
}

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - m_;
  m_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - m_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.m_ - m_;
  const double nt = na + nb;
  m_ = m_ + delta * (nb / nt);
  m2_ = m2_ + other.m2_ + delta * delta * (na * nb / nt);
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

}  // namespace ddos::util
