// Small string utilities shared by parsers, CSV I/O and report emitters.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace ddos::util {

/// Split on a single-character delimiter; keeps empty fields.
std::vector<std::string> split(std::string_view s, char delim);

/// Strip ASCII whitespace from both ends.
std::string_view trim(std::string_view s);

/// Case-insensitive ASCII equality.
bool iequals(std::string_view a, std::string_view b);

/// Lower-case ASCII copy.
std::string to_lower(std::string_view s);

bool starts_with(std::string_view s, std::string_view prefix);
bool ends_with(std::string_view s, std::string_view suffix);

/// Parse an unsigned integer; returns false on any non-digit or overflow.
bool parse_u64(std::string_view s, std::uint64_t& out);

/// Parse a double via std::from_chars semantics; false on failure.
bool parse_double(std::string_view s, double& out);

/// "1234567" -> "1,234,567" (thousands separators for table output).
std::string with_commas(std::uint64_t v);

/// Fixed-precision double formatting, e.g. format_fixed(3.14159, 2) == "3.14".
std::string format_fixed(double v, int precision);

/// Human-readable rate: 1400000000 -> "1.4 Gbps" (powers of 1000).
std::string format_bps(double bits_per_second);

/// Human-readable count: 5790000 -> "5.79M".
std::string format_count(double v);

}  // namespace ddos::util
