// Quickstart: build a small synthetic DNS world, run a DDoS attack against
// one provider's nameservers, observe it through the network telescope,
// sweep the namespace OpenINTEL-style, join the two datasets, and print
// the per-NSSet impact — the paper's whole pipeline (Fig. 1) in ~100 lines.
//
//   ./examples/quickstart
#include <cstdio>
#include <iostream>

#include "core/analysis.h"
#include "core/impact.h"
#include "scenario/driver.h"
#include "util/strings.h"
#include "util/table.h"

using namespace ddos;

int main() {
  // 1. A small world and a scaled-down 17-month attack workload.
  scenario::LongitudinalConfig cfg = scenario::small_longitudinal_config(7);
  cfg.world.domain_count = 6000;
  cfg.world.provider_count = 80;
  cfg.workload.scale = 200.0;

  std::cout << util::banner("quickstart: RSDoS x OpenINTEL join") << "\n";
  scenario::LongitudinalResult r = scenario::run_longitudinal(cfg);

  std::cout << "world: " << r.world->registry.domain_count() << " domains, "
            << r.world->registry.nsset_count() << " NSSets, "
            << r.world->registry.nameserver_count() << " nameservers\n";
  std::cout << "workload: " << r.workload.schedule.size() << " attacks ("
            << r.workload.dns_attacks << " on DNS infrastructure, "
            << r.workload.invisible_vectors << " invisible vectors)\n";
  std::cout << "telescope: " << r.feed.records().size()
            << " feed records -> " << r.events.size() << " stitched events\n";
  std::cout << "openintel: " << r.swept_measurements
            << " measurements swept\n";
  std::cout << "join: " << r.joined.size() << " NSSet-attack events ("
            << r.join_stats.dns_events << " DNS events, "
            << r.join_stats.open_resolver_filtered
            << " open-resolver filtered)\n\n";

  // 2. The paper's headline per-event metric: Impact_on_RTT.
  util::TextTable table({"NSSet victim", "org", "hosted", "measured",
                         "impact", "fail%", "anycast"});
  std::size_t shown = 0;
  for (const auto& ev : r.joined) {
    if (ev.peak_impact < 2.0 && !ev.any_failure()) continue;
    table.add_row({ev.rsdos.victim.to_string(), ev.resilience.org,
                   std::to_string(ev.domains_hosted),
                   std::to_string(ev.domains_measured),
                   util::format_fixed(ev.peak_impact, 1) + "x",
                   util::format_fixed(100.0 * ev.failure_rate, 1),
                   anycast::to_string(ev.resilience.anycast_class)});
    if (++shown == 12) break;
  }
  std::cout << "events with >=2x RTT impact or failures:\n"
            << table.to_string() << "\n";

  const core::ImpactSummary impacts = core::impact_summary(r.joined);
  std::cout << "impact summary: " << impacts.events << " events, "
            << impacts.impaired_10x << " at >=10x, " << impacts.severe_100x
            << " at >=100x\n";
  const core::FailureSummary failures = core::failure_summary(r.joined);
  std::cout << "failures: " << failures.events_with_failures
            << " events with resolution failures ("
            << failures.timeouts << " timeouts, " << failures.servfails
            << " SERVFAILs)\n";
  return 0;
}
