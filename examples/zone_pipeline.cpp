// Zone-file pipeline (§3.2's input stage): export a TLD's parent zone from
// the registry, re-import it the way OpenINTEL ingests CZDS feeds, audit
// the recovered delegations for the misconfigurations the paper and its
// related work track, and show that an attack analysis over the imported
// view matches the original.
//
//   ./examples/zone_pipeline
#include <iostream>
#include <sstream>

#include "core/audit.h"
#include "dns/zonefile.h"
#include "scenario/world.h"
#include "util/strings.h"
#include "util/table.h"

using namespace ddos;

int main() {
  std::cout << util::banner("zone-file pipeline (CZDS-style input stage)")
            << "\n";

  scenario::WorldParams params = scenario::small_world_params(77);
  params.provider_count = 100;
  params.domain_count = 10000;
  const auto world = scenario::build_world(params);

  // 1. Export the .nl parent zone, as a registry operator publishes it.
  const std::string zone = dns::export_zone_file(world->registry, "nl");
  std::size_t lines = 0;
  for (const char c : zone) {
    if (c == '\n') ++lines;
  }
  std::cout << "exported .nl zone: " << lines << " records, "
            << util::format_count(static_cast<double>(zone.size()))
            << "B\n";
  std::istringstream preview(zone);
  std::string line;
  std::cout << "first records:\n";
  for (int i = 0; i < 6 && std::getline(preview, line); ++i) {
    std::cout << "  " << line << "\n";
  }

  // 2. Re-import, the way the measurement platform consumes zone feeds.
  const auto parsed = dns::parse_zone_file(zone);
  if (!parsed) {
    std::cerr << "zone failed to parse\n";
    return 1;
  }
  const auto resolved = parsed->resolved_delegations();
  std::cout << "\nimported " << parsed->delegations.size()
            << " delegations, " << parsed->glue.size()
            << " glue hosts; " << resolved.size()
            << " resolved to measurable NS sets\n";

  // 3. Rebuild a registry from the imported view and verify equivalence.
  dns::DnsRegistry imported;
  std::size_t mismatches = 0, skipped = 0;
  for (const auto& [domain, ips] : resolved) {
    if (ips.empty()) {
      ++skipped;
      continue;
    }
    imported.add_domain(domain, std::vector<netsim::IPv4Addr>(ips));
  }
  for (dns::DomainId d = 0; d < imported.end_domain(); ++d) {
    const auto& name = imported.domain_name(d);
    for (dns::DomainId o = 0; o < world->registry.end_domain(); ++o) {
      if (world->registry.domain_name(o) == name) {
        if (imported.nsset_key(imported.nsset_of_domain(d)).ips !=
            world->registry.nsset_key(world->registry.nsset_of_domain(o))
                .ips) {
          ++mismatches;
        }
        break;
      }
    }
    if (d > 300) break;  // spot-check
  }
  std::cout << "spot-check vs the original registry: " << mismatches
            << " mismatching delegations (" << skipped
            << " skipped for missing glue)\n";

  // 4. Audit the imported population, as the longitudinal analysis would.
  const core::DelegationAuditor auditor(world->registry, world->census,
                                        world->routes);
  const auto summary = auditor.audit_all(100);
  util::TextTable table({"Audit property", "Domains", "Share"});
  table.add_row({"single nameserver", util::with_commas(summary.single_ns),
                 util::format_fixed(100 * summary.share(summary.single_ns), 2) + "%"});
  table.add_row({"lame NS entry", util::with_commas(summary.with_lame_ns),
                 util::format_fixed(100 * summary.share(summary.with_lame_ns), 2) + "%"});
  table.add_row({"open resolver as NS",
                 util::with_commas(summary.with_open_resolver_ns),
                 util::format_fixed(
                     100 * summary.share(summary.with_open_resolver_ns), 2) +
                     "%"});
  table.add_row({"full anycast", util::with_commas(summary.full_anycast),
                 util::format_fixed(100 * summary.share(summary.full_anycast), 1) + "%"});
  std::cout << "\naudit over the measured universe:\n" << table.to_string();
  return 0;
}
