// Reactive monitoring demo (§4.3.1): consume the RSDoS feed as a stream,
// trigger a probing campaign within ten minutes of each attack on DNS
// infrastructure, and print the campaigns' findings as they conclude —
// the in-process equivalent of the paper's Kafka/Spark platform, which the
// authors propose as the path to "near real-time characterization of
// DDoS attacks on DNS infrastructure" (§9).
//
//   ./examples/reactive_monitor
#include <iostream>

#include "reactive/platform.h"
#include "scenario/world.h"
#include "scenario/workload.h"
#include "telescope/darknet.h"
#include "telescope/feed.h"
#include "util/strings.h"
#include "util/table.h"

using namespace ddos;

int main() {
  std::cout << util::banner("reactive measurement monitor (paper §4.3.1)")
            << "\n";

  // A small world with one month of attacks.
  scenario::WorldParams wp = scenario::small_world_params(17);
  wp.provider_count = 60;
  wp.domain_count = 4000;
  const auto world = scenario::build_world(wp);
  scenario::LongitudinalParams lp;
  lp.seed = 99;
  lp.scale = 300.0;
  const scenario::Workload workload = scenario::generate_workload(*world, lp);

  // Infer the feed and stitch events — the monitor's input stream.
  const telescope::Darknet darknet = telescope::Darknet::ucsd_like();
  telescope::RSDoSFeed feed{telescope::InferenceParams{},
                            attack::BackscatterModelParams{}};
  feed.ingest(workload.schedule, darknet, 4242);
  auto events = feed.events();
  std::sort(events.begin(), events.end(),
            [](const telescope::RSDoSEvent& a, const telescope::RSDoSEvent& b) {
              return a.start_window < b.start_window;
            });

  const reactive::ReactivePlatform platform(world->registry,
                                            workload.schedule,
                                            reactive::ReactiveParams{});
  std::cout << "feed: " << events.size()
            << " stitched events; triggering campaigns for nameserver "
               "victims...\n\n";

  util::TextTable table({"Trigger (UTC)", "Victim", "Org", "Delay",
                         "Probed windows", "Min resolution", "Unresolvable",
                         "Recovered"});
  std::size_t campaigns = 0;
  for (const auto& ev : events) {
    if (!world->registry.is_ns_ip(ev.victim) ||
        world->registry.is_open_resolver(ev.victim))
      continue;
    const reactive::Campaign campaign = platform.run_campaign(ev);
    if (campaign.windows.empty()) continue;
    if (++campaigns > 15) break;  // demo: first fifteen campaigns

    double min_rate = 1.0;
    for (const auto& w : campaign.windows) {
      if (w.during_attack) min_rate = std::min(min_rate, w.resolution_rate());
    }
    const auto recovery = campaign.recovery_window(0.9);
    table.add_row(
        {netsim::window_start(campaign.trigger_window).to_string(),
         ev.victim.to_string(),
         world->orgs.org_of(world->routes.origin_of(ev.victim)),
         std::to_string(campaign.trigger_delay_s()) + "s",
         std::to_string(campaign.windows.size()),
         util::format_fixed(100.0 * min_rate, 0) + "%",
         std::to_string(campaign.fully_unresolvable_attack_windows()),
         recovery < 0 ? "n/a"
                      : netsim::window_start(recovery).to_string()});
  }
  std::cout << table.to_string();
  std::cout << "\nEach campaign probes up to 50 domains per 5-minute window "
               "(one query every ~6 seconds, the paper's ethical rate cap), "
               "targets every nameserver of each domain individually, and "
               "keeps probing for 24 hours past the attack to observe "
               "recovery.\n";
  return 0;
}
