// TransIP case study (§5.1): replays the December 2020 and March 2021
// attacks against the Dutch provider's three unicast nameservers and
// prints Table 2 plus the Fig. 2 / Fig. 3 time series.
//
//   ./examples/transip_case_study [scale]
//
// `scale` shrinks the ~776K-domain population (default 0.1 for a fast run;
// the bench uses 1.0).
#include <cstdlib>
#include <iostream>

#include "scenario/transip.h"
#include "util/strings.h"
#include "util/table.h"

using namespace ddos;

int main(int argc, char** argv) {
  scenario::TransIPParams params;
  params.scale = argc > 1 ? std::atof(argv[1]) : 0.1;

  std::cout << util::banner("TransIP case study (paper §5.1)") << "\n";
  const scenario::TransIPResult r = scenario::run_transip(params);

  std::cout << "domains hosted: " << util::with_commas(r.domains_hosted)
            << " (" << util::format_fixed(100 * r.nl_share, 1)
            << "% .nl; paper: ~776K, ~66% .nl)\n";
  std::cout << "third-party web hosting: "
            << util::format_fixed(100 * r.third_party_web_share, 1)
            << "% (paper: ~27%)\n\n";

  util::TextTable t2({"Attack", "NS", "Observed ppm", "Inferred volume",
                      "Attacker IPs"});
  const char* names[3] = {"A", "B", "C"};
  for (int i = 0; i < 3; ++i) {
    t2.add_row({"December 2020", names[i],
                util::format_count(r.december[i].observed_ppm),
                util::format_bps(r.december[i].inferred_gbps * 1e9),
                util::format_count(r.december[i].attacker_ip_count)});
  }
  t2.add_separator();
  for (int i = 0; i < 3; ++i) {
    t2.add_row({"March 2021", names[i],
                util::format_count(r.march[i].observed_ppm),
                util::format_bps(r.march[i].inferred_gbps * 1e9),
                util::format_count(r.march[i].attacker_ip_count)});
  }
  std::cout << "Table 2 (paper: Dec 21.8K/3.8K/2.9K ppm, 1.4G/247M/188Mbps;"
               " Mar 125K/123K/13K ppm, 8G/7.8G/845Mbps):\n"
            << t2.to_string() << "\n";

  std::cout << "Fig. 2 (hourly Impact_on_RTT; * marks telescope-visible "
               "attack hours):\n";
  const auto print_series = [](const std::vector<scenario::SeriesPoint>& s) {
    for (const auto& pt : s) {
      std::cout << "  " << pt.time.to_string() << "  "
                << (pt.attack_marked ? '*' : ' ') << "  "
                << util::format_fixed(pt.impact_on_rtt, 1) << "x  "
                << util::ascii_bar(pt.impact_on_rtt / 200.0, 30);
      std::cout << "\n";
    }
  };
  std::cout << "December 2020 (peak "
            << util::format_fixed(r.december_peak_impact, 1)
            << "x, paper ~10x; residual impairment "
            << util::format_fixed(r.december_residual_hours, 1)
            << "h after visible attack, paper ~8h):\n";
  print_series(r.december_series);
  std::cout << "\nMarch 2021 (peak " << util::format_fixed(r.march_peak_impact, 1)
            << "x; timeout peak "
            << util::format_fixed(100 * r.march_peak_timeout_share, 1)
            << "%, paper ~20%):\n";
  print_series(r.march_series);

  std::cout << "\nFig. 3 (March timeout share by hour):\n";
  for (const auto& pt : r.march_series) {
    if (pt.timeout_share == 0.0 && !pt.attack_marked) continue;
    std::cout << "  " << pt.time.to_string() << "  "
              << util::format_fixed(100 * pt.timeout_share, 1) << "%  "
              << util::ascii_bar(pt.timeout_share, 30) << "\n";
  }
  return 0;
}
