// Russian-infrastructure case studies (§5.2): mil.ru and RZD railways,
// observed through OpenINTEL and the reactive measurement platform.
//
//   ./examples/russia_reactive
#include <iostream>

#include "scenario/russia.h"
#include "util/strings.h"
#include "util/table.h"

using namespace ddos;

int main() {
  std::cout << util::banner("Attacks on Russian assets (paper §5.2)") << "\n";
  const scenario::RussiaResult r = scenario::run_russia(scenario::RussiaParams{});

  std::cout << "-- mil.ru (Ministry of Defence) --\n";
  std::cout << "attack: " << r.milru.attack_start.to_string() << " .. "
            << r.milru.attack_end.to_string()
            << " (paper: March 11-18, 8 days)\n";
  std::cout << "nameservers: 3, all on " << r.milru_distinct_slash24
            << " /24 (paper: same /24, single ASN — the anti-pattern)\n";
  std::cout << "geofence: " << r.milru.geofence_start.to_string() << " .. "
            << r.milru.geofence_end.to_string() << "\n";
  std::cout << "OpenINTEL daily resolution success:\n";
  for (const auto& day : r.milru.openintel_daily) {
    int y = 0, m = 0, d = 0;
    netsim::day_to_ymd(day.day, y, m, d);
    char buf[16];
    std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d", y, m, d);
    std::cout << "  " << buf << "  "
              << util::format_fixed(100 * day.success_share, 0) << "%  "
              << util::ascii_bar(day.success_share, 30) << "\n";
  }
  std::cout << "reactive platform: " << r.milru.attack_windows_probed
            << " attack windows probed, "
            << r.milru.unresolvable_attack_windows << " fully unresolvable ("
            << util::format_fixed(100 * r.milru.unresolvable_share(), 1)
            << "%)\n";
  std::cout << "no nameserver responsive during geofence: "
            << (r.milru.no_ns_responsive_during_geofence ? "yes" : "no")
            << " (paper: none of the three responsive)\n\n";

  std::cout << "-- RZD railways --\n";
  std::cout << "attack: " << r.rdz.attack_start.to_string() << " .. "
            << r.rdz.attack_end.to_string()
            << " (paper: March 8, 15:30-20:45)\n";
  std::cout << "nameservers: 3 on " << r.rdz_distinct_slash24
            << " /24s, single ASN\n";
  std::cout << "resolution rate during attack: "
            << util::format_fixed(100 * r.rdz.during_attack_resolution_rate, 1)
            << "%\n";
  if (r.rdz.recovered()) {
    std::cout << "reactive platform observed recovery at "
              << r.rdz.recovery_time.to_string()
              << " (paper: intermittently responsive from ~06:00 next day)\n";
  } else {
    std::cout << "no recovery observed within the campaign window\n";
  }
  return 0;
}
