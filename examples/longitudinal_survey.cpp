// Longitudinal survey (§6): runs the full seventeen-month pipeline at a
// configurable scale and prints the headline statistics of every analysis
// — the condensed version of what the per-table benches reproduce.
//
//   ./examples/longitudinal_survey [scale]
//
// scale divides the paper's attack counts (default 60 for a fast run; the
// benches use 30).
#include <cstdlib>
#include <iostream>

#include "core/analysis.h"
#include "scenario/driver.h"
#include "util/strings.h"
#include "util/table.h"

using namespace ddos;

int main(int argc, char** argv) {
  scenario::LongitudinalConfig cfg = scenario::default_longitudinal_config();
  cfg.workload.scale = argc > 1 ? std::atof(argv[1]) : 60.0;

  std::cout << util::banner("longitudinal survey (paper §6)") << "\n";
  scenario::LongitudinalResult r = scenario::run_longitudinal(cfg);
  const auto& reg = r.world->registry;

  std::cout << "world: " << reg.domain_count() << " domains, "
            << reg.nsset_count() << " NSSets, " << reg.nameserver_count()
            << " nameservers\n";
  std::cout << "attacks: " << r.workload.schedule.size() << " ("
            << r.workload.dns_attacks << " DNS)  events: " << r.events.size()
            << "  swept: " << r.swept_measurements
            << "  joined: " << r.joined.size() << "\n\n";

  // Table 1 flavour.
  const auto summary = r.feed.summarize([&](netsim::IPv4Addr ip) {
    return r.world->routes.origin_of(ip);
  });
  std::cout << "feed: " << util::with_commas(summary.attacks) << " attacks, "
            << util::with_commas(summary.unique_ips) << " IPs, "
            << util::with_commas(summary.unique_slash24) << " /24s, "
            << util::with_commas(summary.unique_asn)
            << " ASes (paper ratios 1 : 0.25 : 0.10 : 0.006)\n";

  // Table 3 flavour.
  const auto monthly = core::monthly_summary(r.events, reg);
  const auto totals = core::summary_totals(monthly);
  std::cout << "DNS share of attacks: "
            << util::format_fixed(100 * totals.dns_attack_share(), 2)
            << "% (paper 1.21%)\n";

  // Fig 6.
  const auto ports = core::port_distribution(r.events, reg);
  std::cout << "single-port: "
            << util::format_fixed(100 * ports.single_port_share(), 1)
            << "% (paper 80.7%); TCP among single-port: "
            << util::format_fixed(100 * ports.by_protocol.fraction("TCP"), 1)
            << "% (paper 90.4%); TCP port 80: "
            << util::format_fixed(100 * ports.tcp_ports.fraction("80"), 1)
            << "% 53: "
            << util::format_fixed(100 * ports.tcp_ports.fraction("53"), 1)
            << "% 443: "
            << util::format_fixed(100 * ports.tcp_ports.fraction("443"), 1)
            << "% (paper 37/30/~20)\n";

  // §6.3.1 + Fig 7.
  const auto fails = core::failure_summary(r.joined);
  std::cout << "events with failures: "
            << util::format_fixed(100 * fails.failing_event_share(), 2)
            << "% (paper ~1%); timeouts among failures: "
            << util::format_fixed(100 * fails.timeout_share_of_failures(), 1)
            << "% (paper 92%)\n";
  std::cout << "failed-attack ports: 53="
            << util::format_fixed(100 * fails.failed_event_ports.fraction("53"), 0)
            << "% 80="
            << util::format_fixed(100 * fails.failed_event_ports.fraction("80"), 0)
            << "% 443="
            << util::format_fixed(100 * fails.failed_event_ports.fraction("443"), 0)
            << "% (paper 49/31/11)\n";

  // Fig 8.
  const auto impacts = core::impact_summary(r.joined);
  std::cout << "impact >=10x: "
            << util::format_fixed(100 * impacts.impaired_share(), 1)
            << "% of events (paper ~5%); >=100x share of impaired: "
            << util::format_fixed(100 * impacts.severe_share_of_impaired(), 1)
            << "% (paper ~34%)\n";

  // Fig 9 / 10.
  const auto fig9 = core::intensity_impact_series(r.joined, r.darknet);
  const auto fig10 = core::duration_impact_series(r.joined);
  std::cout << "intensity-impact Pearson: "
            << util::format_fixed(fig9.pearson, 3) << " (paper: low)  "
            << "duration-impact Pearson: "
            << util::format_fixed(fig10.pearson, 3) << "\n";

  // Figs 11-13.
  std::cout << "\nimpact by resilience class (median / p90 / max / n):\n";
  const auto print_groups = [](const std::vector<core::GroupImpact>& groups) {
    for (const auto& g : groups) {
      std::cout << "  " << g.group << ": "
                << util::format_fixed(g.median_impact, 2) << " / "
                << util::format_fixed(g.p90_impact, 1) << " / "
                << util::format_fixed(g.max_impact, 0) << " / " << g.events
                << "  (>=100x: " << g.severe_100x
                << ", complete failures: " << g.complete_failures << ")\n";
    }
  };
  print_groups(core::impact_by_anycast(r.joined));
  print_groups(core::impact_by_as_diversity(r.joined));
  print_groups(core::impact_by_prefix_diversity(r.joined));

  const auto attr = core::failure_attribution(r.joined);
  std::cout << "complete failures: " << attr.complete_failures
            << "; single-ASN share "
            << util::format_fixed(100 * attr.single_asn_share(), 0)
            << "% (paper 81%); single-/24 share "
            << util::format_fixed(100 * attr.single_prefix_share(), 0)
            << "% (paper 60%); unicast share "
            << util::format_fixed(100 * attr.unicast_share(), 0)
            << "% (paper 99%)\n";

  // Table 6.
  std::cout << "\ntop organisations by RTT impact (paper: NForce 348x, "
               "Co-Co 219x, NMU 181x, Hetzner 174x, ...):\n";
  for (const auto& c : core::top_companies_by_impact(r.joined, 10)) {
    std::cout << "  " << c.org << ": "
              << util::format_fixed(c.max_impact, 0) << "x\n";
  }

  // Table 4.
  std::cout << "\ntop attacked organisations (paper: Google, Unified Layer, "
               "Cloudflare, OVH, Hetzner, ...):\n";
  for (const auto& t : core::top_attacked_orgs(r.events, reg, r.world->routes,
                                               r.world->orgs, 10)) {
    std::cout << "  " << t.label << ": " << t.attacks << "\n";
  }
  return 0;
}
